package solve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"stsk/internal/csrk"
	"stsk/internal/faultinject"
	"stsk/internal/panicsafe"
	"stsk/internal/sparse"
	"stsk/internal/trace"
)

// Sentinel errors of the solve layer. Both are re-exported by the stsk
// facade (stsk.ErrClosed, stsk.ErrDimension) so callers can match them
// with errors.Is no matter which layer produced them.
var (
	// ErrClosed is returned by every Engine method after Close.
	ErrClosed = errors.New("solve: engine closed")

	// ErrDimension is wrapped by every vector/batch length check.
	ErrDimension = errors.New("solve: dimension mismatch")
)

// Engine is a reusable pack-parallel triangular solver bound to one
// csrk.Structure. Where Parallel spins up fresh goroutines for every
// right-hand side, an Engine starts its worker pool once and parks the
// workers on a job channel between solves, so the per-solve cost is a
// handful of channel operations instead of goroutine creation — the
// "preprocessing amortised over many right-hand sides" setting of the
// paper (§4.1) applied to the runtime as well as the ordering.
//
// An Engine supports three solve shapes:
//
//   - Cooperative solves (SolveInto, SolveUpperInto): one right-hand side,
//     all workers sweep the packs together under the configured OpenMP-style
//     schedule, exactly like Parallel. Cooperative solves are serialised
//     internally; callers may invoke them concurrently.
//   - Batch solves (SolveBatch, SolveBatchInto, ApplySGSBatch): many
//     independent right-hand sides. Each RHS becomes one job that a single
//     worker sweeps sequentially with no barriers, so distinct vectors
//     pipeline through the pack levels concurrently — while worker 0 is in
//     the last pack of RHS 3, worker 1 is in the first pack of RHS 4.
//   - Streaming solves (SolveMany): batch semantics over a channel of
//     right-hand sides, with results delivered in input order and a bounded
//     number of solves in flight.
//
// Every shape performs each row's dot product in the same order, so all
// results are bitwise identical to Sequential.
//
// The numeric side of the factor lives in a Values epoch sequence
// (NewEngineVals): each dispatch loads the current epoch exactly once and
// threads it through the sweep, so Values.Swap (a numeric
// refactorization) never tears an in-flight solve — old dispatches finish
// on the old values, new dispatches see the new ones, and the hot path
// takes no locks for it.
//
// Engines are safe for concurrent use, including Close racing in-flight
// solves: solves already dispatched complete, later ones return
// ErrClosed.
type Engine struct {
	s    *csrk.Structure // epoch-0 structure: the pack/super-row geometry, shared by every epoch
	vals *Values         // the value-epoch sequence the kernels sweep
	n    int             // system dimension
	opts Options

	jobs     chan job
	workerWG sync.WaitGroup
	closeMu  sync.RWMutex
	closed   bool

	// Steady-state allocation elimination: whole-RHS jobs, batch
	// completion trackers, stream completion channels and panel scratch
	// are pooled per engine, so batch, stream and block solves stop
	// allocating once warm. The pools are typed wrappers (pool.go) so the
	// //stsk:noalloc dispatch paths never convert through `any`.
	jobPool   wholeJobPool
	runPool   batchRunPool
	errcPool  errcPool
	panelPool panelPool

	// Cooperative-solve state, reused across solves under solveMu.
	solveMu sync.Mutex
	run     coopRun
	graph   graphRun // dependency-driven schedule state; valid when opts.Graph != nil
}

// job is one unit handed to a parked worker: a share of a barrier-style
// cooperative solve, a share of a graph-scheduled solve, or a whole
// independent right-hand side.
type job struct {
	coop  *coopRun
	id    int // worker index within the cooperative solve
	graph *graphRun
	whole *wholeJob
}

// wholeJob is an independent full sweep of one right-hand side, or — when
// kw > 1 — of one row-major panel of kw right-hand sides (xs/bs set
// instead of x/b): the worker packs the panel into pooled scratch, sweeps
// it with the blocked kernel in sequential row order, and scatters the
// solutions back. Exactly one of run (batch member) and errc (stream
// member) is set. ep is the value epoch the dispatcher pinned for this
// job, so a whole batch (or one stream member) sweeps one consistent
// snapshot no matter when a concurrent refactorization lands.
type wholeJob struct {
	kind   sweepKind
	ep     *epoch
	x, b   []float64
	xs, bs [][]float64
	kw     int
	run    *batchRun
	errc   chan<- error
}

// reset clears every reference and the panel width before the job returns
// to the pool; all recycle sites use it so a pooled job can never carry a
// stale panel configuration (or pin a dead value epoch) into its next use.
func (w *wholeJob) reset() {
	w.ep, w.x, w.b, w.xs, w.bs, w.kw, w.run, w.errc = nil, nil, nil, nil, nil, 0, nil, nil
}

// batchRun tracks one batch's completion without allocating a channel per
// call: workers decrement remaining, record the first error, and the last
// one signals done (capacity 1, reused across batches via runPool).
type batchRun struct {
	remaining atomic.Int32
	mu        sync.Mutex
	err       error
	done      chan struct{}
}

// finish records one completed batch member. The error write is sequenced
// before the decrement, so whoever observes remaining hit zero (the done
// receiver or the dispatcher folding in undispatched members) sees every
// error.
func (r *batchRun) finish(err error) {
	if err != nil {
		r.mu.Lock()
		if r.err == nil {
			r.err = err
		}
		r.mu.Unlock()
	}
	if r.remaining.Add(-1) == 0 {
		r.done <- struct{}{}
	}
}

type sweepKind int

const (
	sweepForward  sweepKind = iota // L′x = b
	sweepBackward                  // L′ᵀx = b
	sweepSGS                       // x = (L′ D⁻¹ L′ᵀ)⁻¹ b, fused, per-worker scratch
)

// NewEngine starts a persistent pool of opts.Workers goroutines over the
// structure, wrapping it in a private value-epoch sequence. The pool
// idles on a channel between solves; call Close (or drop every reference
// — the stsk facade attaches a GC cleanup) to release it.
func NewEngine(s *csrk.Structure, opts Options) *Engine {
	return newEngine(NewValues(s), nil, opts)
}

// NewEngineVals starts a persistent pool over a shared value-epoch
// sequence: every engine created over the same Values sees each
// Values.Swap, and per-epoch derived state (packed layout, transpose,
// diagonal) is built once and shared among them.
func NewEngineVals(v *Values, opts Options) *Engine {
	return newEngine(v, nil, opts)
}

// newEngine optionally adopts a pre-built validated transpose u into the
// current epoch, so the UpperSolver compatibility path does not
// re-transpose per solve.
func newEngine(v *Values, u *sparse.CSR, opts Options) *Engine {
	cur := v.Current()
	s := cur.s
	// A DAG built for a different structure cannot schedule this one: its
	// task boundaries would not respect this structure's independence
	// guarantees, silently racing dependent rows. A mismatched DAG is
	// dropped and the schedule falls back to Guided (withDefaults).
	// Persistent engines run the full structural validation once; one-shot
	// wrappers (an engine per solve) only pay the O(1) span check — their
	// DAGs come from the facade, which always pairs a plan with its own.
	if opts.Graph != nil {
		if opts.oneShot {
			if int(opts.Graph.RowPtr[opts.Graph.NumTasks()]) != s.L.N {
				opts.Graph = nil
			}
		} else if opts.Graph.Validate(s) != nil {
			opts.Graph = nil
		}
	}
	opts = opts.withDefaults()
	e := &Engine{
		s:    s,
		vals: v,
		n:    s.L.N,
		opts: opts,
		jobs: make(chan job),
	}
	if !opts.oneShot {
		// The packed conversion costs an O(nnz) copy — worth it once per
		// epoch of a persistent engine, pure overhead for a single-solve
		// wrapper. packWanted makes future Swap calls pack their new epoch
		// eagerly instead of leaving post-swap solves on the CSR fallback.
		v.packWanted.Store(true)
		cur.ensurePacked()
	}
	if u != nil {
		cur.adoptUpper(u, !opts.oneShot)
	}
	e.panelPool.size = s.L.N * maxBlockWidth
	e.run.e = e
	e.run.barrier.size = opts.Workers
	e.run.barrier.cond = sync.NewCond(&e.run.barrier.mu)
	e.run.counters = make([]atomic.Int64, s.NumPacks())
	if e.opts.Graph != nil {
		e.graph.init(e, e.opts.Graph)
	}
	e.run.passed = make([]int32, opts.Workers)
	for w := 0; w < opts.Workers; w++ {
		e.workerWG.Add(1)
		go e.workerLoop()
	}
	return e
}

// Workers returns the fixed pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// Values returns the engine's value-epoch sequence.
func (e *Engine) Values() *Values { return e.vals }

// Close drains the pool and waits for every worker to exit. Solves issued
// after Close return ErrClosed; Close is idempotent.
func (e *Engine) Close() {
	e.closeMu.Lock()
	if !e.closed {
		e.closed = true
		close(e.jobs)
	}
	e.closeMu.Unlock()
	e.workerWG.Wait()
}

// submit enqueues a job unless the engine is closed. The read lock only
// covers the send, so Close can proceed while callers wait on results.
//
//stsk:noalloc
func (e *Engine) submit(j job) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.jobs <- j
	return nil
}

// submitCtx is submit racing the context: when every worker is busy and
// the caller is cancelled while waiting for a pool slot, it gives up and
// returns ctx.Err() instead of blocking until a worker frees up.
//
//stsk:noalloc
func (e *Engine) submitCtx(ctx context.Context, j job) error {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	select {
	case e.jobs <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// workerLoop is worker plus a last-resort respawn barrier. Contained
// panics never reach it — runWhole and the runShare methods recover at
// the job boundary — but if the loop machinery itself ever panics the
// pool replaces the goroutine instead of silently shrinking: cooperative
// dispatch hands out exactly Workers tokens per solve, so a lost worker
// would strand every later cooperative solve.
func (e *Engine) workerLoop() {
	defer func() {
		if p := recover(); p != nil {
			_ = panicsafe.AsError(p) // converted for the stack capture; nowhere to report
			e.closeMu.RLock()
			if !e.closed {
				e.workerWG.Add(1)
				go e.workerLoop()
			}
			e.closeMu.RUnlock()
		}
		e.workerWG.Done()
	}()
	e.worker()
}

// worker is the parked pool goroutine: it sleeps on the job channel and
// runs whatever share of work arrives. scratch is the worker's lazily
// allocated private vector for fused two-sweep jobs.
func (e *Engine) worker() {
	var scratch []float64
	for j := range e.jobs {
		switch {
		case j.whole != nil:
			w := j.whole
			if w.kind == sweepSGS && scratch == nil {
				scratch = make([]float64, e.n)
			}
			err := e.runWhole(w, scratch)
			// Recycle the job before signalling: once the completion is
			// visible the dispatcher may return, and the pooled job must
			// already be free of references.
			run, errc := w.run, w.errc
			w.reset()
			e.jobPool.Put(w)
			if run != nil {
				run.finish(err)
			} else {
				errc <- err
			}
		case j.graph != nil:
			j.graph.runShare()
			j.graph.wg.Done()
		case j.coop != nil:
			j.coop.runShare(j.id)
			j.coop.wg.Done()
		}
	}
}

// runWhole is the panic-containment boundary for one whole-RHS job: a
// kernel panic (or an injected engine.job fault) becomes a wrapped
// panicsafe.ErrInternal flowing through the job's normal completion path,
// so batch counters and stream done channels always fire and batch-mates
// on other workers are unharmed.
func (e *Engine) runWhole(w *wholeJob, scratch []float64) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = panicsafe.AsError(p)
		}
	}()
	if err := faultinject.Fire(faultinject.EngineJob); err != nil {
		return err
	}
	return e.sweepWhole(w, scratch)
}

// sweepWhole runs one independent right-hand side start to finish on the
// calling worker — no barriers, sequential row order, bitwise identical to
// Sequential — against the value epoch the dispatcher pinned in the job.
func (e *Engine) sweepWhole(w *wholeJob, scratch []float64) error {
	n := e.n
	ep := w.ep
	if w.kw > 1 {
		// Panel job: lengths were validated eagerly by the block dispatcher.
		e.sweepPanel(w)
		return nil
	}
	if len(w.b) != n || len(w.x) != n {
		return fmt.Errorf("%w: vector lengths %d/%d, want %d", ErrDimension, len(w.x), len(w.b), n)
	}
	switch w.kind {
	case sweepForward:
		ep.forwardRows(w.x, w.b, 0, n)
	case sweepBackward:
		ep.backwardRows(w.x, w.b, 0, n)
	case sweepSGS:
		d := ep.diagonal()
		ep.forwardRows(scratch, w.b, 0, n)
		for i := 0; i < n; i++ {
			scratch[i] *= d[i]
		}
		ep.backwardRows(w.x, scratch, 0, n)
	}
	return nil
}

// ensureUpper builds and validates ep's transposed matrix for backward
// sweeps on first use. The transpose is packed whenever any persistent
// engine shares these values, so one-shot wrappers never strand a
// persistent engine's epoch on the CSR fallback.
func (e *Engine) ensureUpper(ep *epoch) error {
	return ep.ensureUpper(e.vals.packWanted.Load())
}

// Diagonal returns (building once per epoch) the diagonal of L′ at the
// current value epoch. The slice is epoch state: callers must treat it as
// read-only.
func (e *Engine) Diagonal() []float64 { return e.vals.Current().diagonal() }

// Solve solves L′x = b cooperatively and returns x.
func (e *Engine) Solve(b []float64) ([]float64, error) {
	x := make([]float64, e.n)
	if err := e.SolveInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves L′x = b into a caller-provided vector: all pool workers
// sweep the packs together under the engine's schedule.
//
//stsk:allow-background (non-context convenience wrapper; SolveIntoCtx threads a caller ctx)
func (e *Engine) SolveInto(x, b []float64) error {
	return e.coopSolve(context.Background(), x, b, false)
}

// SolveIntoCtx is SolveInto honoring a context: the deadline/cancellation
// is checked before the solve is dispatched (and again after any wait for
// an earlier cooperative solve), returning ctx.Err() instead of starting.
// A sweep already dispatched always runs to completion — the pack loop is
// not preempted mid-solve.
func (e *Engine) SolveIntoCtx(ctx context.Context, x, b []float64) error {
	return e.coopSolve(ctx, x, b, false)
}

// SolveUpper solves L′ᵀx = b cooperatively and returns x.
func (e *Engine) SolveUpper(b []float64) ([]float64, error) {
	x := make([]float64, e.n)
	if err := e.SolveUpperInto(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveUpperInto solves L′ᵀx = b into a caller-provided vector, sweeping
// the packs in reverse order.
//
//stsk:allow-background (non-context convenience wrapper; SolveUpperIntoCtx threads a caller ctx)
func (e *Engine) SolveUpperInto(x, b []float64) error {
	return e.coopSolve(context.Background(), x, b, true)
}

// SolveUpperIntoCtx is SolveUpperInto honoring a context, with the same
// dispatch-boundary semantics as SolveIntoCtx.
func (e *Engine) SolveUpperIntoCtx(ctx context.Context, x, b []float64) error {
	return e.coopSolve(ctx, x, b, true)
}

// coopSolve runs one cooperative pack-parallel solve. Cooperative solves
// are serialised on solveMu; batch jobs interleave freely with them. The
// context is only consulted before dispatch: a cooperative sweep needs
// every worker at the barrier, so once the job tokens are out the solve
// always completes.
func (e *Engine) coopSolve(ctx context.Context, x, b []float64, reverse bool) error {
	n := e.n
	if len(b) != n || len(x) != n {
		return fmt.Errorf("%w: vector lengths %d/%d, want %d", ErrDimension, len(x), len(b), n)
	}
	tr := trace.FromContext(ctx)
	p0 := trace.Now()
	ep := e.vals.Current()
	tr.Observe(trace.StageEpochPin, p0, trace.Now())
	return e.panelSolve(ctx, ep, x, b, 1, reverse)
}

// panelSolve runs one cooperative sweep of epoch ep under the engine's
// schedule — scalar when kw == 1, a row-major n×kw panel otherwise. Rows
// are claimed exactly as in the scalar sweep (same packs, same super-row
// schedule, same task DAG); the only difference is that each claimed row
// applies its (col, val) entries across all kw panel columns, so the
// matrix is traversed once per panel instead of once per vector. X may
// alias B. Callers validate lengths (n·kw each) and pin the epoch.
//
//stsk:noalloc
func (e *Engine) panelSolve(ctx context.Context, ep *epoch, X, B []float64, kw int, reverse bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tr := trace.FromContext(ctx)
	if reverse {
		u0 := trace.Now()
		if err := e.ensureUpper(ep); err != nil {
			return err
		}
		tr.Observe(trace.StageEpochPin, u0, trace.Now())
	}
	if e.opts.Workers == 1 || e.s.NumSuperRows() == 1 {
		// Degenerate layouts skip the pool entirely, like Parallel.
		e.closeMu.RLock()
		closed := e.closed
		e.closeMu.RUnlock()
		if closed {
			return ErrClosed
		}
		s0 := trace.Now()
		err := e.localSweep(ep, X, B, kw, reverse)
		tr.Observe(trace.StageSweep, s0, trace.Now())
		return err
	}
	e.solveMu.Lock()
	defer e.solveMu.Unlock()
	// Queueing behind earlier cooperative solves can outlast the deadline;
	// re-check before committing the pool.
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.opts.Schedule == Graph {
		s0 := trace.Now()
		err := e.graphSolve(ep, X, B, kw, reverse)
		tr.Observe(trace.StageSweep, s0, trace.Now())
		return err
	}
	d0 := trace.Now()
	r := &e.run
	r.ep, r.x, r.b, r.kw, r.reverse = ep, X, B, kw, reverse
	r.failErr = nil
	for w := range r.passed {
		r.passed[w] = 0
	}
	for p := range r.counters {
		if reverse {
			r.counters[p].Store(int64(e.s.PackPtr[p+1]))
		} else {
			r.counters[p].Store(int64(e.s.PackPtr[p]))
		}
	}
	// All shares are dispatched under one read-lock so Close cannot land
	// between them: a cooperative solve needs every worker at the barrier,
	// so a partially dispatched solve could never finish. Close taken
	// after dispatch merely waits — the workers finish this solve before
	// they observe the closed channel.
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return ErrClosed
	}
	for w := 0; w < e.opts.Workers; w++ {
		r.wg.Add(1)
		e.jobs <- job{coop: r, id: w}
	}
	e.closeMu.RUnlock()
	s0 := trace.Now()
	tr.Observe(trace.StageDispatch, d0, s0)
	r.wg.Wait()
	tr.Observe(trace.StageSweep, s0, trace.Now())
	// Wait orders every worker's fail() before this read; no lock needed.
	err := r.failErr
	r.failErr = nil
	r.ep, r.x, r.b = nil, nil, nil
	return err
}

// localSweep runs the degenerate (single worker or single super-row)
// cooperative sweep on the caller's goroutine. It is the containment
// boundary for that path — panelSolve is //stsk:noalloc and cannot hold
// the recover closure itself. The caller already ensured the transpose
// when reverse is set.
func (e *Engine) localSweep(ep *epoch, X, B []float64, kw int, reverse bool) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = panicsafe.AsError(p)
		}
	}()
	if err := faultinject.Fire(faultinject.EngineJob); err != nil {
		return err
	}
	n := e.n
	switch {
	case kw > 1 && reverse:
		ep.backwardRowsBlock(X, B, kw, 0, n)
	case kw > 1:
		ep.forwardRowsBlock(X, B, kw, 0, n)
	case reverse:
		ep.backwardRows(X, B, 0, n)
	default:
		ep.forwardRows(X, B, 0, n)
	}
	return nil
}

// graphSolve runs one dependency-driven cooperative solve (see graphRun),
// scalar or panel. Called under solveMu; the dispatch discipline mirrors
// the barrier path: workers claim ready tasks point-to-point instead of
// meeting at a barrier, but the job tokens go out under one read-lock all
// the same. Unlike the barrier path the graph loop tolerates fewer live
// workers than tokens — any subset of workers drains the ready queue —
// but dispatch is still all-or-nothing for simplicity.
//
//stsk:noalloc
func (e *Engine) graphSolve(ep *epoch, x, b []float64, kw int, reverse bool) error {
	g := &e.graph
	g.reset(ep, x, b, kw, reverse)
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return ErrClosed
	}
	for w := 0; w < e.opts.Workers; w++ {
		g.wg.Add(1)
		e.jobs <- job{graph: g}
	}
	e.closeMu.RUnlock()
	g.wg.Wait()
	err := g.failErr
	g.failErr = nil
	g.ep, g.x, g.b = nil, nil, nil
	return err
}

// SolveBatch solves L′xᵢ = bᵢ for every right-hand side of B and returns
// the solutions. Each RHS is swept sequentially by one worker, so up to
// Workers vectors travel the pack levels concurrently with no barriers.
func (e *Engine) SolveBatch(B [][]float64) ([][]float64, error) {
	X := make([][]float64, len(B))
	for i := range X {
		X[i] = make([]float64, e.n)
	}
	if err := e.SolveBatchInto(X, B); err != nil {
		return nil, err
	}
	return X, nil
}

// SolveBatchInto is SolveBatch writing into caller-provided solution
// vectors; X[i] may alias B[i] for an in-place solve.
//
//stsk:allow-background (non-context convenience wrapper; SolveBatchIntoCtx threads a caller ctx)
func (e *Engine) SolveBatchInto(X, B [][]float64) error {
	return e.batch(context.Background(), X, B, sweepForward)
}

// SolveBatchIntoCtx is SolveBatchInto honoring a context: a cancelled or
// expired context stops the dispatch loop — no further right-hand sides
// are handed to the pool — and the call returns ctx.Err() once the
// already-dispatched solves drain. The engine stays fully usable.
func (e *Engine) SolveBatchIntoCtx(ctx context.Context, X, B [][]float64) error {
	return e.batch(ctx, X, B, sweepForward)
}

// SolveUpperBatchInto solves L′ᵀxᵢ = bᵢ for every right-hand side.
//
//stsk:allow-background (non-context convenience wrapper; SolveUpperBatchIntoCtx threads a caller ctx)
func (e *Engine) SolveUpperBatchInto(X, B [][]float64) error {
	return e.batch(context.Background(), X, B, sweepBackward)
}

// SolveUpperBatchIntoCtx is SolveUpperBatchInto honoring a context, with
// the same stop-dispatching semantics as SolveBatchIntoCtx.
func (e *Engine) SolveUpperBatchIntoCtx(ctx context.Context, X, B [][]float64) error {
	return e.batch(ctx, X, B, sweepBackward)
}

// ApplySGSBatch applies the symmetric Gauss–Seidel preconditioner
// M⁻¹ = (L′ D⁻¹ L′ᵀ)⁻¹ to every vector of R: forward sweep into the
// worker's private scratch, diagonal scale, backward sweep into X[i].
// One worker performs both sweeps of a vector back to back, keeping the
// intermediate entirely in its own preallocated scratch.
//
//stsk:allow-background (non-context convenience wrapper over the batch path)
func (e *Engine) ApplySGSBatch(X, R [][]float64) error {
	return e.batch(context.Background(), X, R, sweepSGS)
}

// batch fans the (X[i], B[i]) pairs out as independent whole-RHS jobs and
// gathers the first error. Every pair is validated before anything is
// dispatched, so a ragged or wrong-length member fails the whole batch
// with ErrDimension and no work reaches the pool. The value epoch is
// loaded once, so the whole batch sweeps one consistent snapshot even
// when a refactorization lands mid-batch. Cancellation wins over
// per-solve errors: a dead context stops dispatch immediately and the
// batch reports ctx.Err(). Completion is tracked by a pooled batchRun
// counter instead of a per-call channel, so a warm engine runs batches
// without allocating.
//
//stsk:noalloc
func (e *Engine) batch(ctx context.Context, X, B [][]float64, kind sweepKind) error {
	if err := e.checkPanelDims(X, B); err != nil {
		return err
	}
	if len(B) == 0 {
		return nil
	}
	ep := e.vals.Current()
	if kind != sweepForward {
		if err := e.ensureUpper(ep); err != nil {
			return err
		}
	}
	run := e.runPool.Get()
	run.err = nil
	run.remaining.Store(int32(len(B)))
	issued := 0
	var first error
	for i := range B {
		if err := ctx.Err(); err != nil {
			first = err
			break
		}
		j := e.jobPool.Get()
		j.kind, j.ep, j.x, j.b, j.run, j.errc = kind, ep, X[i], B[i], run, nil
		if err := e.submitCtx(ctx, job{whole: j}); err != nil {
			j.reset()
			e.jobPool.Put(j)
			first = err
			break
		}
		issued++
	}
	return e.finishRun(run, len(B), issued, first)
}

// finishRun completes a pooled batchRun after a dispatch loop: fold the
// undispatched members into the counter — whoever takes it to zero owns
// the completion signal; if that is a worker it signals done, if it is
// this Add no signal was (or will be) sent, because in-flight workers
// only ever saw a positive count — then wait, collect the first worker
// error (dispatch errors win), and recycle the run.
//
//stsk:noalloc
func (e *Engine) finishRun(run *batchRun, total, issued int, first error) error {
	if skipped := total - issued; skipped == 0 || run.remaining.Add(-int32(skipped)) > 0 {
		<-run.done
	}
	err := run.err
	run.err = nil
	e.runPool.Put(run)
	if first == nil {
		first = err
	}
	return first
}

// Result is one solved right-hand side from SolveMany.
type Result struct {
	X   []float64
	Err error
}

// SolveMany streams right-hand sides through the pool: vectors read from
// bs are solved as batch jobs (pipelined across workers) and the results
// are delivered on the returned channel in input order. At most
// 2×Workers solves are in flight at once, bounding memory for unbounded
// streams. The output channel closes after bs closes and every pending
// solve has been delivered.
//
// The caller owns the stream's lifecycle: close bs when done producing
// and receive until the output channel closes. The output buffer lets a
// short tail (up to 2×Workers results) flush without a consumer — enough
// for the stop-on-first-error pattern — but a stream abandoned with more
// work outstanding blocks the internal goroutines, and the producer,
// until the output is drained.
//
//stsk:allow-background (non-context convenience wrapper; SolveManyCtx threads a caller ctx)
func (e *Engine) SolveMany(bs <-chan []float64) <-chan Result {
	return e.SolveManyCtx(context.Background(), bs)
}

// SolveManyCtx is SolveMany honoring a context: when ctx is cancelled the
// stream stops reading bs and dispatching solves, the in-flight tail
// drains in order, a final Result carrying ctx.Err() is delivered, and
// the output channel closes — even if bs is never closed. The engine
// stays fully usable afterwards. Each streamed vector pins the value
// epoch current at its dispatch, so a refactorization mid-stream splits
// the results cleanly between the two snapshots — never within one.
func (e *Engine) SolveManyCtx(ctx context.Context, bs <-chan []float64) <-chan Result {
	type pending struct {
		x    []float64
		errc chan error
	}
	out := make(chan Result, 2*e.opts.Workers)
	inflight := make(chan pending, 2*e.opts.Workers)
	fail := func(err error) pending {
		ec := e.errcPool.Get()
		ec <- err
		return pending{errc: ec}
	}
	go func() {
		defer close(inflight)
		// Registered after close(inflight), so it runs first: a panic in
		// the dispatch plumbing becomes the stream's final, ordered error
		// result instead of taking the process down.
		defer func() {
			if p := recover(); p != nil {
				inflight <- fail(panicsafe.AsError(p))
			}
		}()
		for {
			select {
			case <-ctx.Done():
				inflight <- fail(ctx.Err())
				return
			case b, ok := <-bs:
				if !ok {
					return
				}
				// The result vector is handed to the consumer and cannot be
				// pooled; the completion channel comes from (and returns to)
				// the engine pool.
				p := pending{x: make([]float64, e.n), errc: e.errcPool.Get()}
				inflight <- p // bound the pipeline before enqueueing work
				j := e.jobPool.Get()
				// Each streamed vector deliberately pins the epoch current at
				// its own dispatch (see the method comment): a refactorization
				// mid-stream splits results between snapshots, never within one.
				//stsk:allow-epoch-repin
				j.kind, j.ep, j.x, j.b, j.run, j.errc = sweepForward, e.vals.Current(), p.x, b, nil, p.errc
				if err := e.submitCtx(ctx, job{whole: j}); err != nil {
					// Report the failure in order but keep draining bs, so a
					// producer that never watches ctx (plain SolveMany racing
					// Close) is not stranded blocked on a send; each further
					// vector yields its own error result until bs closes. A
					// cancelled ctx instead exits through the Done case above,
					// where producers are documented to select on ctx.
					j.reset()
					e.jobPool.Put(j)
					p.errc <- err
				}
			}
		}
	}()
	go func() {
		defer close(out)
		defer func() {
			if p := recover(); p != nil {
				out <- Result{Err: panicsafe.AsError(p)}
			}
		}()
		for p := range inflight {
			err := <-p.errc
			e.errcPool.Put(p.errc)
			if err != nil {
				out <- Result{Err: err}
			} else {
				out <- Result{X: p.x}
			}
		}
	}()
	return out
}

// coopRun is the shared state of one cooperative solve over the pool. For
// panel solves x and b hold row-major n×kw panels; kw == 1 is a scalar
// solve. ep is the value epoch pinned at dispatch.
type coopRun struct {
	e        *Engine
	ep       *epoch
	x, b     []float64
	kw       int
	reverse  bool
	counters []atomic.Int64 // per-pack next super-row claim
	barrier  barrier
	wg       sync.WaitGroup

	// Containment state: the first failure of the solve, and per worker
	// the number of barrier generations attended (each generation is
	// written only by its owning worker; panelSolve reads after wg.Wait).
	failMu  sync.Mutex
	failErr error
	passed  []int32
}

// fail records the first failure of this cooperative solve.
func (r *coopRun) fail(err error) {
	r.failMu.Lock()
	if r.failErr == nil {
		r.failErr = err
	}
	r.failMu.Unlock()
}

// runShare is the panic-containment boundary for one worker's share of a
// barrier-scheduled cooperative solve. A kernel panic (or an injected
// engine.job fault) is recorded on the run, and the worker then attends
// every remaining barrier generation before returning: the cyclic
// barrier needs all Workers arrivals per pack, so a silently vanishing
// worker would strand its panel-mates forever. passed[id] counts the
// generations already attended (work increments it after each wait), so
// the drain loop knows exactly how many remain.
func (r *coopRun) runShare(id int) {
	nPacks := r.e.s.NumPacks()
	defer func() {
		if p := recover(); p != nil {
			r.fail(panicsafe.AsError(p))
			for int(r.passed[id]) < nPacks {
				r.barrier.wait()
				r.passed[id]++
			}
		}
	}()
	if err := faultinject.Fire(faultinject.EngineJob); err != nil {
		// An injected error skips this worker's share. Dynamic and
		// Guided mates absorb the unclaimed rows; either way the solve
		// reports failure, so the numeric result is never trusted.
		r.fail(err)
		for int(r.passed[id]) < nPacks {
			r.barrier.wait()
			r.passed[id]++
		}
		return
	}
	r.work(id)
}

// work is one worker's share of a cooperative solve: packs in order
// (reverse order for the transposed sweep), super-rows claimed by the
// engine's schedule, a barrier between packs.
//
//stsk:noalloc
func (r *coopRun) work(id int) {
	e := r.e
	s := e.s
	nPacks := s.NumPacks()
	for step := 0; step < nPacks; step++ {
		p := step
		if r.reverse {
			p = nPacks - 1 - step
		}
		lo, hi := s.PackSuperRows(p)
		switch {
		case e.opts.Schedule == Static:
			span := hi - lo
			per := (span + e.opts.Workers - 1) / e.opts.Workers
			start := lo + id*per
			end := start + per
			if start > hi {
				start = hi
			}
			if end > hi {
				end = hi
			}
			if r.reverse {
				for sr := end - 1; sr >= start; sr-- {
					r.solveSuper(sr)
				}
			} else {
				for sr := start; sr < end; sr++ {
					r.solveSuper(sr)
				}
			}
		case r.reverse:
			// Dynamic and Guided both count down in chunks on the
			// transposed sweep.
			c := int64(e.opts.Chunk)
			for {
				to := r.counters[p].Add(-c) + c
				if to <= int64(lo) {
					break
				}
				from := to - c
				if from < int64(lo) {
					from = int64(lo)
				}
				for sr := int(to) - 1; sr >= int(from); sr-- {
					r.solveSuper(sr)
				}
			}
		case e.opts.Schedule == Dynamic:
			c := int64(e.opts.Chunk)
			for {
				from := r.counters[p].Add(c) - c
				if from >= int64(hi) {
					break
				}
				to := from + c
				if to > int64(hi) {
					to = int64(hi)
				}
				for sr := int(from); sr < int(to); sr++ {
					r.solveSuper(sr)
				}
			}
		default: // Guided
			for {
				from, to, ok := r.grabGuided(p, hi)
				if !ok {
					break
				}
				for sr := from; sr < to; sr++ {
					r.solveSuper(sr)
				}
			}
		}
		// All workers must finish pack p before any starts the next;
		// the barrier's mutex also publishes the x writes.
		r.barrier.wait()
		r.passed[id]++
	}
}

// grabGuided claims the next guided chunk of pack p: remaining/workers
// super-rows, floored at the chunk option.
//
//stsk:noalloc
func (r *coopRun) grabGuided(p, hi int) (from, to int, ok bool) {
	for {
		cur := r.counters[p].Load()
		if cur >= int64(hi) {
			return 0, 0, false
		}
		remaining := int(int64(hi) - cur)
		take := remaining / r.e.opts.Workers
		if take < r.e.opts.Chunk {
			take = r.e.opts.Chunk
		}
		if take > remaining {
			take = remaining
		}
		if r.counters[p].CompareAndSwap(cur, cur+int64(take)) {
			return int(cur), int(cur) + take, true
		}
	}
}

//stsk:noalloc
func (r *coopRun) solveSuper(sr int) {
	lo, hi := r.e.s.SuperRowRows(sr)
	switch {
	case r.kw > 1 && r.reverse:
		r.ep.backwardRowsBlock(r.x, r.b, r.kw, lo, hi)
	case r.kw > 1:
		r.ep.forwardRowsBlock(r.x, r.b, r.kw, lo, hi)
	case r.reverse:
		r.ep.backwardRows(r.x, r.b, lo, hi)
	default:
		r.ep.forwardRows(r.x, r.b, lo, hi)
	}
}
