package graph

import (
	"fmt"

	"stsk/internal/sparse"
)

// DAGLevels computes the classic level sets of a lower-triangular system
// [Saltz 1990]: level(i) = 1 + max{ level(j) : L(i,j) ≠ 0, j < i }, with
// sourceless rows at level 0. Rows within a level are mutually independent
// and can be solved concurrently once all earlier levels are complete.
//
// The matrix must be lower triangular; only the strictly-lower pattern is
// read, so a missing diagonal is fine here.
func DAGLevels(l *sparse.CSR) (levels []int, numLevels int, err error) {
	if !l.IsLowerTriangular() {
		return nil, 0, fmt.Errorf("graph: DAGLevels requires a lower-triangular matrix")
	}
	levels = make([]int, l.N)
	for i := 0; i < l.N; i++ {
		lv := 0
		cols, _ := l.Row(i)
		for _, j := range cols {
			if j >= i {
				break
			}
			if levels[j]+1 > lv {
				lv = levels[j] + 1
			}
		}
		levels[i] = lv
		if lv+1 > numLevels {
			numLevels = lv + 1
		}
	}
	return levels, numLevels, nil
}

// BFSLevels returns the breadth-first distance of every vertex from the
// given seed (the paper's "variant of breadth-first search", §2), visiting
// remaining components from their own maximum-degree vertices. Unlike DAG
// levels, vertices sharing a BFS level may be adjacent; callers that use
// BFS levels to build packs must renumber and re-extract the lower triangle
// so the DAG levels of the renumbered system define the final packs
// (see internal/order).
func (g *Graph) BFSLevels(seed int) (levels []int, numLevels int) {
	levels = make([]int, g.N)
	for i := range levels {
		levels[i] = -1
	}
	if g.N == 0 {
		return levels, 0
	}
	if seed < 0 || seed >= g.N {
		seed = 0
	}
	assign := func(src int) {
		g.BFS(src, func(v, d int) {
			levels[v] = d
			if d+1 > numLevels {
				numLevels = d + 1
			}
		})
	}
	assign(seed)
	for {
		best, bestDeg := -1, -1
		for v := 0; v < g.N; v++ {
			if levels[v] < 0 && g.Degree(v) > bestDeg {
				best, bestDeg = v, g.Degree(v)
			}
		}
		if best < 0 {
			return levels, numLevels
		}
		assign(best)
	}
}

// VerifyLevels checks the defining property of triangular level sets: every
// strictly-lower entry of l crosses from a strictly smaller level.
func VerifyLevels(l *sparse.CSR, levels []int) error {
	if len(levels) != l.N {
		return fmt.Errorf("graph: %d levels for %d rows", len(levels), l.N)
	}
	for i := 0; i < l.N; i++ {
		cols, _ := l.Row(i)
		for _, j := range cols {
			if j >= i {
				break
			}
			if levels[j] >= levels[i] {
				return fmt.Errorf("graph: dependency (%d←%d) does not cross levels: %d vs %d",
					i, j, levels[i], levels[j])
			}
		}
	}
	return nil
}

// GroupByLabel converts a per-vertex label array (colours or levels) into
// packs: packs[k] lists the vertices with label k, in ascending vertex
// order. Labels must lie in [0, numLabels).
func GroupByLabel(labels []int, numLabels int) [][]int {
	packs := make([][]int, numLabels)
	counts := make([]int, numLabels)
	for _, l := range labels {
		counts[l]++
	}
	for k := range packs {
		packs[k] = make([]int, 0, counts[k])
	}
	for v, l := range labels {
		packs[l] = append(packs[l], v)
	}
	return packs
}
