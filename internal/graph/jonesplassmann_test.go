package graph

import (
	"math/rand"
	"testing"

	"stsk/internal/gen"
)

func TestJonesPlassmannValidColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 80)
		colors, nc := g.JonesPlassmannColor(int64(trial), 4)
		if err := g.VerifyColoring(colors); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		maxDeg := 0
		for v := 0; v < g.N; v++ {
			if d := g.Degree(v); d > maxDeg {
				maxDeg = d
			}
		}
		if nc > maxDeg+1 {
			t.Fatalf("trial %d: %d colours exceed Δ+1 = %d", trial, nc, maxDeg+1)
		}
	}
}

func TestJonesPlassmannDeterministicPerSeed(t *testing.T) {
	g := FromMatrix(gen.TriMesh(18, 18, 3))
	c1, n1 := g.JonesPlassmannColor(7, 3)
	c2, n2 := g.JonesPlassmannColor(7, 8) // worker count must not matter
	if n1 != n2 {
		t.Fatalf("colour counts differ across worker counts: %d vs %d", n1, n2)
	}
	for v := range c1 {
		if c1[v] != c2[v] {
			t.Fatalf("vertex %d coloured %d vs %d", v, c1[v], c2[v])
		}
	}
}

func TestJonesPlassmannComparableToGreedy(t *testing.T) {
	for _, m := range []struct {
		name string
		g    *Graph
	}{
		{"trimesh", FromMatrix(gen.TriMesh(22, 22, 5))},
		{"grid3d", FromMatrix(gen.Grid3D(7, 7, 7))},
		{"quaddual", FromMatrix(gen.QuadDual(14, 14, 2))},
	} {
		_, greedy := m.g.GreedyColor(NaturalOrder)
		_, jp := m.g.JonesPlassmannColor(3, 4)
		if jp > 2*greedy+2 {
			t.Errorf("%s: JP used %d colours, greedy %d", m.name, jp, greedy)
		}
	}
}

func TestJonesPlassmannEdgeCases(t *testing.T) {
	// Edgeless graph: one colour, one round.
	g := FromMatrix(gen.Grid2D(1, 5)) // path 1x5? Grid2D(1,5) is a path
	colors, nc := g.JonesPlassmannColor(1, 2)
	if err := g.VerifyColoring(colors); err != nil {
		t.Fatal(err)
	}
	if nc < 1 || nc > 2 {
		t.Fatalf("path coloured with %d colours", nc)
	}
	single := pathGraph(1)
	_, nc = single.JonesPlassmannColor(1, 4)
	if nc != 1 {
		t.Fatalf("singleton coloured with %d colours", nc)
	}
}
