package graph

import (
	"math/rand"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/sparse"
)

func TestDAGLevelsBidiagonal(t *testing.T) {
	// Bidiagonal L: every row depends on the previous one -> n levels.
	n := 6
	coo := sparse.NewCOO(n, 2*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
		if i > 0 {
			coo.Add(i, i-1, 1)
		}
	}
	l := coo.ToCSR()
	levels, nl, err := DAGLevels(l)
	if err != nil {
		t.Fatal(err)
	}
	if nl != n {
		t.Fatalf("levels = %d, want %d", nl, n)
	}
	for i, lv := range levels {
		if lv != i {
			t.Fatalf("level[%d] = %d, want %d", i, lv, i)
		}
	}
	if err := VerifyLevels(l, levels); err != nil {
		t.Fatal(err)
	}
}

func TestDAGLevelsDiagonal(t *testing.T) {
	n := 5
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	l := coo.ToCSR()
	_, nl, err := DAGLevels(l)
	if err != nil {
		t.Fatal(err)
	}
	if nl != 1 {
		t.Fatalf("diagonal matrix has %d levels, want 1", nl)
	}
}

func TestDAGLevelsRejectsUpper(t *testing.T) {
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 1, 1)
	coo.Add(1, 1, 1)
	if _, _, err := DAGLevels(coo.ToCSR()); err == nil {
		t.Fatal("accepted upper-triangular input")
	}
}

func TestDAGLevelsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(50)
		coo := sparse.NewCOO(n, 4*n)
		for i := 0; i < n; i++ {
			coo.Add(i, i, 1)
			for e := 0; e < rng.Intn(4); e++ {
				j := rng.Intn(i + 1)
				if j < i {
					coo.Add(i, j, 1)
				}
			}
		}
		l := coo.ToCSR()
		levels, nl, err := DAGLevels(l)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyLevels(l, levels); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Levels must be exactly 0..nl-1 with no gaps.
		seen := make([]bool, nl)
		for _, lv := range levels {
			if lv < 0 || lv >= nl {
				t.Fatalf("trial %d: level %d out of range", trial, lv)
			}
			seen[lv] = true
		}
		for lv, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: level %d empty", trial, lv)
			}
		}
	}
}

func TestBFSLevelsPath(t *testing.T) {
	g := pathGraph(7)
	levels, nl := g.BFSLevels(0)
	if nl != 7 {
		t.Fatalf("BFS levels = %d, want 7", nl)
	}
	for i, lv := range levels {
		if lv != i {
			t.Fatalf("level[%d] = %d, want %d", i, lv, i)
		}
	}
}

func TestBFSLevelsDisconnected(t *testing.T) {
	coo := sparse.NewCOO(5, 6)
	for i := 0; i < 5; i++ {
		coo.Add(i, i, 1)
	}
	coo.AddSym(0, 1, 1)
	coo.AddSym(3, 4, 1)
	g := FromMatrix(coo.ToCSR())
	levels, _ := g.BFSLevels(0)
	for v, lv := range levels {
		if lv < 0 {
			t.Fatalf("vertex %d unassigned", v)
		}
	}
}

func TestBFSLevelsFewerOnCoarseGraph(t *testing.T) {
	// The paper's motivation for applying level sets to G2 (§3.2): the
	// coarse graph has fewer vertices, hence fewer levels.
	m := gen.Grid2D(24, 24)
	g1 := FromMatrix(m)
	_, nl1 := g1.BFSLevels(g1.MaxDegreeVertex())
	part := CoarsenContiguous(m, 4)
	g2 := CoarseGraph(g1, part)
	_, nl2 := g2.BFSLevels(g2.MaxDegreeVertex())
	if nl2 >= nl1 {
		t.Fatalf("coarse graph has %d BFS levels, fine has %d; want fewer", nl2, nl1)
	}
}

func TestGroupByLabel(t *testing.T) {
	labels := []int{1, 0, 1, 2, 0}
	packs := GroupByLabel(labels, 3)
	if len(packs) != 3 {
		t.Fatalf("packs = %d, want 3", len(packs))
	}
	if len(packs[0]) != 2 || packs[0][0] != 1 || packs[0][1] != 4 {
		t.Fatalf("pack 0 = %v", packs[0])
	}
	if len(packs[2]) != 1 || packs[2][0] != 3 {
		t.Fatalf("pack 2 = %v", packs[2])
	}
}

func TestVerifyLevelsCatchesViolation(t *testing.T) {
	coo := sparse.NewCOO(2, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 0, 1)
	coo.Add(1, 1, 1)
	l := coo.ToCSR()
	if err := VerifyLevels(l, []int{0, 0}); err == nil {
		t.Fatal("same-level dependency accepted")
	}
	if err := VerifyLevels(l, []int{0}); err == nil {
		t.Fatal("short level array accepted")
	}
}
