package graph

import (
	"fmt"

	"stsk/internal/sparse"
)

// Partition maps fine vertices to coarse super-vertices (the "super-rows"
// of CSR-k, paper §3.1).
type Partition struct {
	Membership []int // fine vertex -> part id in [0, NumParts)
	NumParts   int
}

// PartSizes returns the number of fine vertices in each part.
func (p *Partition) PartSizes() []int {
	sizes := make([]int, p.NumParts)
	for _, part := range p.Membership {
		sizes[part]++
	}
	return sizes
}

// Validate checks that every vertex is assigned a part in range and that
// no part is empty.
func (p *Partition) Validate() error {
	seen := make([]bool, p.NumParts)
	for v, part := range p.Membership {
		if part < 0 || part >= p.NumParts {
			return fmt.Errorf("graph: vertex %d in part %d, out of range [0,%d)", v, part, p.NumParts)
		}
		seen[part] = true
	}
	for part, ok := range seen {
		if !ok {
			return fmt.Errorf("graph: part %d is empty", part)
		}
	}
	return nil
}

// CoarsenContiguous groups consecutively numbered rows of a (band-reduced,
// typically RCM-ordered) matrix into super-rows of approximately equal
// work, measured in nonzeros. This is the paper's route to super-rows for
// band-reducing orderings (§3.1): grouping continuous rows both preserves
// spatial locality and balances the per-task operation count, and the
// resulting parts are contiguous index ranges as CSR-k requires.
//
// rowsPerSuper bounds the number of rows agglomerated into one super-row;
// the nonzero budget per super-row is ceil(nnz/n)·rowsPerSuper, so dense
// rows close a super-row early.
func CoarsenContiguous(m *sparse.CSR, rowsPerSuper int) *Partition {
	if rowsPerSuper < 1 {
		rowsPerSuper = 1
	}
	meanRow := (m.NNZ() + m.N - 1) / maxInt(m.N, 1)
	budget := meanRow * rowsPerSuper
	p := &Partition{Membership: make([]int, m.N)}
	cur, rows, nnz := 0, 0, 0
	for i := 0; i < m.N; i++ {
		rowNNZ := m.RowPtr[i+1] - m.RowPtr[i]
		if rows > 0 && (rows >= rowsPerSuper || nnz+rowNNZ > budget) {
			cur++
			rows, nnz = 0, 0
		}
		p.Membership[i] = cur
		rows++
		nnz += rowNNZ
	}
	if m.N > 0 {
		p.NumParts = cur + 1
	}
	return p
}

// CoarsenMatching computes a maximal matching that pairs each vertex with
// an unmatched neighbour (preferring the neighbour sharing the most common
// neighbours — a heavy-edge analogue for unweighted graphs) and collapses
// matched pairs; unmatched vertices become singleton parts. This is the
// graph-coarsening route to super-rows for matrices without a banded
// structure.
func CoarsenMatching(g *Graph) *Partition {
	match := make([]int, g.N)
	for i := range match {
		match[i] = -1
	}
	common := make([]int, g.N) // scratch: shared-neighbour counts
	stamp := make([]int, g.N)
	for i := range stamp {
		stamp[i] = -1
	}
	for v := 0; v < g.N; v++ {
		if match[v] >= 0 {
			continue
		}
		// Count shared neighbours with each unmatched neighbour.
		for _, u := range g.Neighbors(v) {
			for _, w := range g.Neighbors(u) {
				if w == v {
					continue
				}
				if stamp[w] != v {
					stamp[w] = v
					common[w] = 0
				}
				common[w]++
			}
		}
		best, bestScore := -1, -1
		for _, u := range g.Neighbors(v) {
			if match[u] >= 0 {
				continue
			}
			score := 0
			if stamp[u] == v {
				score = common[u]
			}
			if score > bestScore {
				best, bestScore = u, score
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		}
	}
	p := &Partition{Membership: make([]int, g.N)}
	part := 0
	for v := 0; v < g.N; v++ {
		if match[v] >= 0 && match[v] < v {
			p.Membership[v] = p.Membership[match[v]]
			continue
		}
		p.Membership[v] = part
		part++
	}
	p.NumParts = part
	return p
}

// CoarseGraph builds the quotient graph of g under the partition: one
// vertex per part, an edge between distinct parts that contain adjacent
// fine vertices. This is G2 (and recursively G3, ...) of the paper.
func CoarseGraph(g *Graph, p *Partition) *Graph {
	adjSets := make([][]int, p.NumParts)
	stamp := make([]int, p.NumParts)
	for i := range stamp {
		stamp[i] = -1
	}
	for v := 0; v < g.N; v++ {
		pv := p.Membership[v]
		for _, u := range g.Neighbors(v) {
			pu := p.Membership[u]
			if pu == pv {
				continue
			}
			// Dedup within this (pv, pu) by stamping per source part pass.
			adjSets[pv] = append(adjSets[pv], pu)
		}
	}
	coarse := &Graph{N: p.NumParts, Ptr: make([]int, p.NumParts+1)}
	for part := 0; part < p.NumParts; part++ {
		lst := adjSets[part]
		lst = dedupSorted(lst)
		adjSets[part] = lst
		coarse.Ptr[part+1] = coarse.Ptr[part] + len(lst)
	}
	coarse.Adj = make([]int, coarse.Ptr[p.NumParts])
	for part := 0; part < p.NumParts; part++ {
		copy(coarse.Adj[coarse.Ptr[part]:], adjSets[part])
	}
	return coarse
}

func dedupSorted(a []int) []int {
	if len(a) == 0 {
		return a
	}
	insertionSort(a)
	out := a[:1]
	for _, x := range a[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func insertionSort(a []int) {
	// Neighbour lists per part are short; insertion sort avoids the
	// sort.Ints interface overhead in this hot coarsening path.
	if len(a) > 64 {
		quickSortInts(a)
		return
	}
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

func quickSortInts(a []int) {
	for len(a) > 64 {
		pivot := a[len(a)/2]
		lo, hi := 0, len(a)-1
		for lo <= hi {
			for a[lo] < pivot {
				lo++
			}
			for a[hi] > pivot {
				hi--
			}
			if lo <= hi {
				a[lo], a[hi] = a[hi], a[lo]
				lo++
				hi--
			}
		}
		if hi < len(a)-lo {
			quickSortInts(a[:hi+1])
			a = a[lo:]
		} else {
			quickSortInts(a[lo:])
			a = a[:hi+1]
		}
	}
	insertionSortSmall(a)
}

func insertionSortSmall(a []int) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
