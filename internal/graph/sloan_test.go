package graph

import (
	"math/rand"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/sparse"
)

func TestSloanIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 60)
		perm := g.Sloan()
		if err := sparse.CheckPermutation(perm); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSloanReducesBandwidthOnShuffledBand(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n, band := 150, 3
	coo := sparse.NewCOO(n, 2*band*n)
	shuffle := rng.Perm(n)
	for i := 0; i < n; i++ {
		coo.Add(shuffle[i], shuffle[i], 1)
		for d := 1; d <= band; d++ {
			if i+d < n {
				coo.AddSym(shuffle[i], shuffle[i+d], 1)
			}
		}
	}
	g := FromMatrix(coo.ToCSR())
	before := g.Bandwidth(nil)
	perm := g.Sloan()
	after := g.Bandwidth(perm)
	if after >= before {
		t.Fatalf("Sloan bandwidth %d not below shuffled %d", after, before)
	}
	if after > 8*band {
		t.Fatalf("Sloan bandwidth %d far from band %d", after, band)
	}
}

func TestSloanComparableToRCMOnMesh(t *testing.T) {
	m := gen.TriMesh(20, 20, 3)
	g := FromMatrix(m)
	rcm := g.Bandwidth(g.RCM())
	sloan := g.Bandwidth(g.Sloan())
	// Sloan optimises profile, not bandwidth, so allow slack — but it must
	// stay in the same regime as RCM on a regular mesh.
	if sloan > 4*rcm {
		t.Fatalf("Sloan bandwidth %d vastly worse than RCM %d", sloan, rcm)
	}
}

func TestSloanDisconnected(t *testing.T) {
	coo := sparse.NewCOO(7, 8)
	for i := 0; i < 7; i++ {
		coo.Add(i, i, 1)
	}
	coo.AddSym(0, 1, 1)
	coo.AddSym(3, 4, 1)
	coo.AddSym(4, 5, 1)
	g := FromMatrix(coo.ToCSR())
	perm := g.Sloan()
	if err := sparse.CheckPermutation(perm); err != nil {
		t.Fatal(err)
	}
}
