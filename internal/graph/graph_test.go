package graph

import (
	"math/rand"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/sparse"
)

// pathGraph returns the path 0-1-2-...-n-1.
func pathGraph(n int) *Graph {
	coo := sparse.NewCOO(n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
		if i+1 < n {
			coo.AddSym(i, i+1, 1)
		}
	}
	return FromMatrix(coo.ToCSR())
}

// randomGraph returns a random symmetric graph with n in [1, maxN].
func randomGraph(rng *rand.Rand, maxN int) *Graph {
	n := 1 + rng.Intn(maxN)
	coo := sparse.NewCOO(n, 4*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	for e := 0; e < rng.Intn(4*n); e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			coo.AddSym(i, j, 1)
		}
	}
	return FromMatrix(coo.ToCSR())
}

func TestFromMatrixDropsDiagonal(t *testing.T) {
	g := pathGraph(4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatalf("degrees wrong: %d, %d", g.Degree(0), g.Degree(1))
	}
	if g.HasEdge(0, 0) {
		t.Fatal("self loop retained")
	}
}

func TestBFSOrderAndDistances(t *testing.T) {
	g := pathGraph(5)
	var order []int
	var dists []int
	g.BFS(2, func(v, d int) {
		order = append(order, v)
		dists = append(dists, d)
	})
	if len(order) != 5 {
		t.Fatalf("BFS visited %d vertices, want 5", len(order))
	}
	if order[0] != 2 || dists[0] != 0 {
		t.Fatal("BFS must start at source with distance 0")
	}
	wantDist := map[int]int{0: 2, 1: 1, 2: 0, 3: 1, 4: 2}
	for k, v := range order {
		if dists[k] != wantDist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dists[k], wantDist[v])
		}
	}
}

func TestComponents(t *testing.T) {
	coo := sparse.NewCOO(6, 12)
	for i := 0; i < 6; i++ {
		coo.Add(i, i, 1)
	}
	coo.AddSym(0, 1, 1)
	coo.AddSym(2, 3, 1)
	coo.AddSym(3, 4, 1)
	g := FromMatrix(coo.ToCSR())
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Fatalf("component labels wrong: %v", comp)
	}
	if comp[0] == comp[2] || comp[2] == comp[5] {
		t.Fatalf("distinct components merged: %v", comp)
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := pathGraph(9)
	pp := g.PseudoPeripheral(4)
	if pp != 0 && pp != 8 {
		t.Fatalf("pseudo-peripheral of a path = %d, want an endpoint", pp)
	}
}

func TestRCMReducesBandwidthOnShuffledBand(t *testing.T) {
	// Build a banded graph, shuffle it, and check RCM recovers a small
	// bandwidth (within a small factor of the original band).
	rng := rand.New(rand.NewSource(17))
	n, band := 200, 3
	coo := sparse.NewCOO(n, 2*band*n)
	shuffle := rng.Perm(n)
	for i := 0; i < n; i++ {
		coo.Add(shuffle[i], shuffle[i], 1)
		for d := 1; d <= band; d++ {
			if i+d < n {
				coo.AddSym(shuffle[i], shuffle[i+d], 1)
			}
		}
	}
	g := FromMatrix(coo.ToCSR())
	before := g.Bandwidth(nil)
	perm := g.RCM()
	if err := sparse.CheckPermutation(perm); err != nil {
		t.Fatalf("RCM produced invalid permutation: %v", err)
	}
	after := g.Bandwidth(perm)
	if after > 4*band {
		t.Fatalf("RCM bandwidth %d, want <= %d (before shuffle-undo: %d)", after, 4*band, before)
	}
	if after >= before/4 {
		t.Logf("note: shuffled bandwidth %d, RCM bandwidth %d", before, after)
	}
}

func TestRCMIsPermutationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 60)
		perm := g.RCM()
		if err := sparse.CheckPermutation(perm); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBFSOrderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 50)
		perm := g.BFSOrder(g.MaxDegreeVertex())
		if err := sparse.CheckPermutation(perm); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Seed must map to 0 within its component ordering.
		if g.N > 0 && perm[g.MaxDegreeVertex()] != 0 {
			t.Fatalf("trial %d: seed not numbered first", trial)
		}
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	coo := sparse.NewCOO(4, 8)
	for i := 0; i < 4; i++ {
		coo.Add(i, i, 1)
	}
	coo.AddSym(1, 0, 1)
	coo.AddSym(1, 2, 1)
	coo.AddSym(1, 3, 1)
	g := FromMatrix(coo.ToCSR())
	if v := g.MaxDegreeVertex(); v != 1 {
		t.Fatalf("MaxDegreeVertex = %d, want 1", v)
	}
	empty := &Graph{N: 0, Ptr: []int{0}}
	if v := empty.MaxDegreeVertex(); v != -1 {
		t.Fatalf("MaxDegreeVertex on empty = %d, want -1", v)
	}
}

func TestGraphFromGenerators(t *testing.T) {
	m := gen.Grid2D(15, 15)
	g := FromMatrix(m)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	_, count := g.Components()
	if count != 1 {
		t.Fatalf("grid should be connected, got %d components", count)
	}
}
