package graph

import (
	"fmt"
	"sort"
)

// ColorOrder selects the vertex visit order for greedy colouring.
type ColorOrder int

const (
	// NaturalOrder colours vertices 0..n-1 in index order — the behaviour
	// of Boost's sequential_vertex_coloring used by the paper.
	NaturalOrder ColorOrder = iota
	// LargestFirst colours vertices in decreasing degree order
	// (Welsh–Powell), which typically lowers the colour count.
	LargestFirst
	// SmallestLast removes minimum-degree vertices and colours in reverse
	// removal order; optimal for many sparse classes.
	SmallestLast
)

func (o ColorOrder) String() string {
	switch o {
	case NaturalOrder:
		return "natural"
	case LargestFirst:
		return "largest-first"
	case SmallestLast:
		return "smallest-last"
	}
	return fmt.Sprintf("ColorOrder(%d)", int(o))
}

// GreedyColor colours the graph greedily with the first available colour
// along the chosen vertex order. It returns the colour of every vertex and
// the number of colours used. Colours are 0-based.
func (g *Graph) GreedyColor(order ColorOrder) (colors []int, numColors int) {
	seq := g.colorSequence(order)
	colors = make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	mark := make([]int, g.N) // colour -> last vertex that blocked it
	for i := range mark {
		mark[i] = -1
	}
	for _, v := range seq {
		for _, u := range g.Neighbors(v) {
			if c := colors[u]; c >= 0 {
				mark[c] = v
			}
		}
		c := 0
		for mark[c] == v {
			c++
		}
		colors[v] = c
		if c+1 > numColors {
			numColors = c + 1
		}
	}
	return colors, numColors
}

func (g *Graph) colorSequence(order ColorOrder) []int {
	seq := make([]int, g.N)
	for i := range seq {
		seq[i] = i
	}
	switch order {
	case NaturalOrder:
	case LargestFirst:
		sort.SliceStable(seq, func(a, b int) bool {
			return g.Degree(seq[a]) > g.Degree(seq[b])
		})
	case SmallestLast:
		seq = g.smallestLastSequence()
	}
	return seq
}

// smallestLastSequence computes the smallest-last vertex order using a
// bucket queue over residual degrees (linear time).
func (g *Graph) smallestLastSequence() []int {
	n := g.N
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	orderRev := make([]int, 0, n)
	cur := 0
	for len(orderRev) < n {
		if cur > maxDeg {
			break
		}
		b := buckets[cur]
		if len(b) == 0 {
			cur++
			continue
		}
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale entry
		}
		removed[v] = true
		orderRev = append(orderRev, v)
		for _, u := range g.Neighbors(v) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		}
	}
	// Colour in reverse removal order.
	seq := make([]int, n)
	for i, v := range orderRev {
		seq[n-1-i] = v
	}
	return seq
}

// VerifyColoring returns an error if any edge is monochromatic or any
// vertex uncoloured.
func (g *Graph) VerifyColoring(colors []int) error {
	if len(colors) != g.N {
		return fmt.Errorf("graph: %d colours for %d vertices", len(colors), g.N)
	}
	for v := 0; v < g.N; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("graph: vertex %d uncoloured", v)
		}
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				return fmt.Errorf("graph: edge (%d,%d) monochromatic with colour %d", v, u, colors[v])
			}
		}
	}
	return nil
}
