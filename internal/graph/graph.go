// Package graph provides the graph-algorithm substrate of the STS-k
// reproduction: compact undirected adjacency built from symmetric sparse
// matrices, breadth-first search, connected components, pseudo-peripheral
// vertices, (Reverse) Cuthill–McKee ordering, greedy colouring, the level
// sets used by level-set triangular solution, and the graph coarsening that
// produces CSR-k super-rows.
package graph

import (
	"fmt"
	"sort"

	"stsk/internal/sparse"
)

// Graph is a compact undirected graph: the neighbours of v are
// Adj[Ptr[v]:Ptr[v+1]], sorted ascending, with no self loops.
type Graph struct {
	N   int
	Ptr []int
	Adj []int
}

// FromMatrix builds the graph G(A) of a structurally symmetric matrix:
// one vertex per row, an edge {i,j} for every off-diagonal entry.
// The caller is responsible for symmetrising first (sparse.SymmetrizePattern)
// if the matrix is triangular.
func FromMatrix(m *sparse.CSR) *Graph {
	g := &Graph{N: m.N, Ptr: make([]int, m.N+1)}
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		cnt := 0
		for _, j := range cols {
			if j != i {
				cnt++
			}
		}
		g.Ptr[i+1] = g.Ptr[i] + cnt
	}
	g.Adj = make([]int, g.Ptr[m.N])
	pos := append([]int(nil), g.Ptr[:m.N]...)
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		for _, j := range cols {
			if j != i {
				g.Adj[pos[i]] = j
				pos[i]++
			}
		}
	}
	return g
}

// Neighbors returns the sorted neighbour list of v as a sub-slice of the
// graph storage; the caller must not modify it.
func (g *Graph) Neighbors(v int) []int { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// MaxDegreeVertex returns the vertex with the largest degree (smallest
// index on ties), or -1 for an empty graph.
func (g *Graph) MaxDegreeVertex() int {
	best, bestDeg := -1, -1
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}

// Validate checks the structural invariants: sorted neighbour lists, no
// self loops, and symmetric adjacency.
func (g *Graph) Validate() error {
	if len(g.Ptr) != g.N+1 {
		return fmt.Errorf("graph: Ptr length %d, want %d", len(g.Ptr), g.N+1)
	}
	for v := 0; v < g.N; v++ {
		prev := -1
		for _, u := range g.Neighbors(v) {
			if u < 0 || u >= g.N {
				return fmt.Errorf("graph: vertex %d has neighbour %d out of range", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if u <= prev {
				return fmt.Errorf("graph: neighbours of %d not strictly sorted", v)
			}
			prev = u
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: edge (%d,%d) missing its reverse", v, u)
			}
		}
	}
	return nil
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	adj := g.Neighbors(u)
	k := sort.SearchInts(adj, v)
	return k < len(adj) && adj[k] == v
}

// BFS traverses the component containing src in breadth-first order and
// calls visit(v, dist) for each reached vertex. The visit order within a
// level follows ascending neighbour order.
func (g *Graph) BFS(src int, visit func(v, dist int)) {
	seen := make([]bool, g.N)
	queue := make([]int, 0, g.N)
	dist := make([]int, g.N)
	seen[src] = true
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		visit(v, dist[v])
		for _, u := range g.Neighbors(v) {
			if !seen[u] {
				seen[u] = true
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
}

// Components labels each vertex with a component id in [0, count) and
// returns the labels and the component count. Component ids are assigned
// in order of their smallest vertex.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	for v := 0; v < g.N; v++ {
		if comp[v] >= 0 {
			continue
		}
		g.BFS(v, func(u, _ int) { comp[u] = count })
		count++
	}
	return comp, count
}

// eccentricityInfo is the result of one BFS sweep used by the
// pseudo-peripheral search.
type eccentricityInfo struct {
	far      int // a vertex at maximum distance, with minimum degree among those
	height   int // the maximum distance reached
	lastSize int // number of vertices in the last level
}

func (g *Graph) sweep(src int) eccentricityInfo {
	info := eccentricityInfo{far: src}
	farDeg := g.Degree(src)
	g.BFS(src, func(v, d int) {
		switch {
		case d > info.height:
			info.height = d
			info.lastSize = 1
			info.far, farDeg = v, g.Degree(v)
		case d == info.height:
			info.lastSize++
			if dg := g.Degree(v); dg < farDeg {
				info.far, farDeg = v, dg
			}
		}
	})
	return info
}

// PseudoPeripheral returns a pseudo-peripheral vertex of the component
// containing start, using the George–Liu iteration: repeatedly BFS and jump
// to a minimum-degree vertex of the deepest level until the eccentricity
// estimate stops growing.
func (g *Graph) PseudoPeripheral(start int) int {
	cur := start
	info := g.sweep(cur)
	for {
		next := g.sweep(info.far)
		if next.height <= info.height {
			return info.far
		}
		cur = info.far
		info = next
		_ = cur
	}
}
