package graph

import (
	"math/rand"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/sparse"
)

func TestCoarsenContiguousBasic(t *testing.T) {
	m := gen.Grid2D(10, 10)
	p := CoarsenContiguous(m, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Contiguity: membership must be non-decreasing.
	for i := 1; i < len(p.Membership); i++ {
		if p.Membership[i] < p.Membership[i-1] {
			t.Fatalf("membership decreases at %d", i)
		}
		if p.Membership[i] > p.Membership[i-1]+1 {
			t.Fatalf("membership jumps at %d", i)
		}
	}
	// Rows per part bounded.
	for _, s := range p.PartSizes() {
		if s > 4 {
			t.Fatalf("part size %d exceeds rowsPerSuper", s)
		}
		if s < 1 {
			t.Fatal("empty part")
		}
	}
}

func TestCoarsenContiguousNNZBalance(t *testing.T) {
	m := gen.Grid2D(16, 16)
	p := CoarsenContiguous(m, 8)
	budget := ((m.NNZ()+m.N-1)/m.N)*8 + 10
	nnzPerPart := make([]int, p.NumParts)
	for i := 0; i < m.N; i++ {
		nnzPerPart[p.Membership[i]] += m.RowPtr[i+1] - m.RowPtr[i]
	}
	for part, z := range nnzPerPart {
		// A single dense row may exceed the budget, but with a grid every
		// part should respect it.
		if z > budget {
			t.Fatalf("part %d has %d nnz, budget %d", part, z, budget)
		}
	}
}

func TestCoarsenContiguousClamps(t *testing.T) {
	m := gen.Grid2D(4, 4)
	p := CoarsenContiguous(m, 0) // clamped to 1: every row its own part
	if p.NumParts != m.N {
		t.Fatalf("rowsPerSuper=0 should yield singleton parts, got %d parts for %d rows", p.NumParts, m.N)
	}
}

func TestCoarsenMatchingPairs(t *testing.T) {
	g := pathGraph(8)
	p := CoarsenMatching(g)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sizes := p.PartSizes()
	for _, s := range sizes {
		if s > 2 {
			t.Fatalf("matching produced part of size %d", s)
		}
	}
	if p.NumParts >= g.N {
		t.Fatalf("matching on a path should shrink the graph: %d parts for %d vertices", p.NumParts, g.N)
	}
}

func TestCoarsenMatchingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(rng, 60)
		p := CoarsenMatching(g)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, s := range p.PartSizes() {
			if s < 1 || s > 2 {
				t.Fatalf("trial %d: part size %d", trial, s)
			}
		}
		// Matched pairs must be adjacent.
		byPart := make(map[int][]int)
		for v, part := range p.Membership {
			byPart[part] = append(byPart[part], v)
		}
		for _, vs := range byPart {
			if len(vs) == 2 && !g.HasEdge(vs[0], vs[1]) {
				t.Fatalf("trial %d: non-adjacent vertices %v matched", trial, vs)
			}
		}
	}
}

func TestCoarseGraphQuotient(t *testing.T) {
	// Path 0-1-2-3 with parts {0,1} and {2,3} -> coarse path of 2 vertices.
	g := pathGraph(4)
	p := &Partition{Membership: []int{0, 0, 1, 1}, NumParts: 2}
	cg := CoarseGraph(g, p)
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cg.N != 2 || cg.NumEdges() != 1 {
		t.Fatalf("coarse graph n=%d edges=%d, want 2, 1", cg.N, cg.NumEdges())
	}
	if !cg.HasEdge(0, 1) {
		t.Fatal("coarse edge missing")
	}
}

func TestCoarseGraphNoSelfLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 50)
		p := CoarsenMatching(g)
		cg := CoarseGraph(g, p)
		if err := cg.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cg.N != p.NumParts {
			t.Fatalf("trial %d: coarse n=%d, parts=%d", trial, cg.N, p.NumParts)
		}
	}
}

func TestCoarseGraphPreservesConnectivity(t *testing.T) {
	m := gen.Grid2D(12, 12)
	g := FromMatrix(m)
	p := CoarsenContiguous(m, 6)
	cg := CoarseGraph(g, p)
	_, count := cg.Components()
	if count != 1 {
		t.Fatalf("coarsening a connected grid produced %d components", count)
	}
}

func TestPermuteThenCoarsenPipeline(t *testing.T) {
	// The CSR-k construction route: RCM order, then contiguous grouping.
	m := gen.TriMesh(12, 12, 5)
	g := FromMatrix(m)
	perm := g.RCM()
	pm, err := sparse.PermuteSym(m, perm)
	if err != nil {
		t.Fatal(err)
	}
	p := CoarsenContiguous(pm, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	g2 := CoarseGraph(FromMatrix(pm), p)
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	if g2.N >= g.N {
		t.Fatal("coarse graph not smaller")
	}
}
