package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// TestQuickSortInts exercises both the recursive partition (slices over
// the 64-element insertion-sort cutoff) and the small-slice path.
func TestQuickSortInts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 2, 63, 64, 65, 500, 4096} {
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(97) - 48 // plenty of duplicates
		}
		want := slices.Clone(a)
		slices.Sort(want)
		quickSortInts(a)
		if !slices.Equal(a, want) {
			t.Fatalf("n=%d: quickSortInts mis-sorted", n)
		}
	}
	desc := []int{9, 8, 7, 3, 3, 1, 0, -2}
	insertionSortSmall(desc)
	if !slices.IsSorted(desc) {
		t.Fatal("insertionSortSmall mis-sorted a descending run")
	}
}
