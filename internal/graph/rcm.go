package graph

import "sort"

// CuthillMcKee returns the Cuthill–McKee ordering as a permutation mapping
// old vertex index to new index. Each connected component is traversed
// breadth-first from a pseudo-peripheral vertex, visiting neighbours in
// ascending degree order — the band-reducing ordering of [Cuthill & McKee
// 1969] that the paper applies before every scheme.
func (g *Graph) CuthillMcKee() []int {
	perm := make([]int, g.N) // old -> new
	order := make([]int, 0, g.N)
	seen := make([]bool, g.N)
	var buf []int
	for v := 0; v < g.N; v++ {
		if seen[v] {
			continue
		}
		src := g.PseudoPeripheral(v)
		seen[src] = true
		queue := []int{src}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			order = append(order, u)
			buf = buf[:0]
			for _, w := range g.Neighbors(u) {
				if !seen[w] {
					seen[w] = true
					buf = append(buf, w)
				}
			}
			sort.Slice(buf, func(a, b int) bool {
				da, db := g.Degree(buf[a]), g.Degree(buf[b])
				if da != db {
					return da < db
				}
				return buf[a] < buf[b]
			})
			queue = append(queue, buf...)
		}
	}
	for newIdx, old := range order {
		perm[old] = newIdx
	}
	return perm
}

// RCM returns the Reverse Cuthill–McKee permutation (old index → new
// index): the Cuthill–McKee order with new indices reversed, which reduces
// bandwidth and profile for finite-element-style matrices.
func (g *Graph) RCM() []int {
	perm := g.CuthillMcKee()
	for i, p := range perm {
		perm[i] = g.N - 1 - p
	}
	return perm
}

// BFSOrder returns a permutation (old → new) numbering vertices in BFS
// order from the given seed; remaining components are traversed from their
// own maximum-degree vertex. The paper seeds level-set construction at a
// vertex of largest degree (§4.1); this ordering realises that choice.
func (g *Graph) BFSOrder(seed int) []int {
	perm := make([]int, g.N)
	seen := make([]bool, g.N)
	next := 0
	visitComp := func(src int) {
		g.BFS(src, func(v, _ int) {
			seen[v] = true
			perm[v] = next
			next++
		})
	}
	if g.N == 0 {
		return perm
	}
	if seed < 0 || seed >= g.N {
		seed = 0
	}
	visitComp(seed)
	for next < g.N {
		// Highest-degree unseen vertex starts the next component.
		best, bestDeg := -1, -1
		for v := 0; v < g.N; v++ {
			if !seen[v] && g.Degree(v) > bestDeg {
				best, bestDeg = v, g.Degree(v)
			}
		}
		visitComp(best)
	}
	return perm
}

// Bandwidth returns the maximum |perm[u]-perm[v]| over edges {u,v} under
// the given ordering, or over the identity if perm is nil.
func (g *Graph) Bandwidth(perm []int) int {
	bw := 0
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			var d int
			if perm == nil {
				d = v - u
			} else {
				d = perm[v] - perm[u]
			}
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
