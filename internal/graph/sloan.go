package graph

import "container/heap"

// Sloan returns the Sloan profile-reducing ordering as a permutation (old
// vertex → new index). Sloan's algorithm [Sloan 1986] orders each
// component from a pseudo-peripheral start vertex, prioritising vertices
// by a weighted combination of (distance to the end vertex) and (current
// degree), which typically beats RCM on profile and wavefront. The paper
// names alternative bandwidth-reducing orderings for the §3.4 in-pack
// reordering as future work; this provides one.
//
// Weights follow Sloan's classic W1=2 (global distance) and W2=1 (local
// degree).
func (g *Graph) Sloan() []int {
	const (
		w1 = 2 // distance-to-end weight
		w2 = 1 // degree weight
	)
	perm := make([]int, g.N)
	// Status per vertex: inactive(0), preactive(1), active(2), numbered(3).
	const (
		inactive = iota
		preactive
		active
		numbered
	)
	status := make([]int, g.N)
	priority := make([]int, g.N)
	dist := make([]int, g.N)
	next := 0

	for comp := 0; comp < g.N; comp++ {
		if status[comp] != inactive {
			continue
		}
		start := g.PseudoPeripheral(comp)
		end := g.sweep(start).far
		// Distances to the end vertex drive the global priority term.
		g.BFS(end, func(v, d int) { dist[v] = d })
		pq := &sloanQueue{index: make(map[int]int)}
		heap.Init(pq)
		g.BFS(start, func(v, _ int) {
			priority[v] = w1*dist[v] - w2*(g.Degree(v)+1)
		})
		status[start] = preactive
		heap.Push(pq, sloanItem{v: start, pri: priority[start]})
		for pq.Len() > 0 {
			v := heap.Pop(pq).(sloanItem).v
			if status[v] == numbered {
				continue
			}
			if status[v] == preactive {
				// Activating v also boosts its neighbours.
				for _, u := range g.Neighbors(v) {
					if status[u] == numbered {
						continue
					}
					priority[u] += w2
					if status[u] == inactive {
						status[u] = preactive
						heap.Push(pq, sloanItem{v: u, pri: priority[u]})
					} else {
						pq.update(u, priority[u])
					}
				}
			}
			status[v] = numbered
			perm[v] = next
			next++
			for _, u := range g.Neighbors(v) {
				if status[u] == preactive {
					status[u] = active
					priority[u] += w2
					pq.update(u, priority[u])
					for _, w := range g.Neighbors(u) {
						if status[w] == numbered {
							continue
						}
						priority[w] += w2
						if status[w] == inactive {
							status[w] = preactive
							heap.Push(pq, sloanItem{v: w, pri: priority[w]})
						} else {
							pq.update(w, priority[w])
						}
					}
				}
			}
		}
	}
	return perm
}

type sloanItem struct {
	v   int
	pri int
}

// sloanQueue is a max-heap on priority with lazy position tracking.
type sloanQueue struct {
	items []sloanItem
	index map[int]int // vertex -> heap position
}

func (q *sloanQueue) Len() int { return len(q.items) }
func (q *sloanQueue) Less(i, j int) bool {
	if q.items[i].pri != q.items[j].pri {
		return q.items[i].pri > q.items[j].pri
	}
	return q.items[i].v < q.items[j].v
}
func (q *sloanQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.index[q.items[i].v] = i
	q.index[q.items[j].v] = j
}
func (q *sloanQueue) Push(x any) {
	q.index[x.(sloanItem).v] = len(q.items)
	q.items = append(q.items, x.(sloanItem))
}
func (q *sloanQueue) Pop() any {
	old := q.items
	n := len(old)
	item := old[n-1]
	q.items = old[:n-1]
	delete(q.index, item.v)
	return item
}

// update adjusts the priority of a queued vertex, if present.
func (q *sloanQueue) update(v, pri int) {
	if pos, ok := q.index[v]; ok {
		q.items[pos].pri = pri
		heap.Fix(q, pos)
	}
}
