package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stsk/internal/gen"
	"stsk/internal/sparse"
)

func TestGreedyColorPath(t *testing.T) {
	g := pathGraph(10)
	for _, ord := range []ColorOrder{NaturalOrder, LargestFirst, SmallestLast} {
		colors, nc := g.GreedyColor(ord)
		if err := g.VerifyColoring(colors); err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if nc != 2 {
			t.Fatalf("%v: path coloured with %d colours, want 2", ord, nc)
		}
	}
}

func TestGreedyColorCompleteGraph(t *testing.T) {
	n := 6
	coo := sparse.NewCOO(n, n*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
		for j := i + 1; j < n; j++ {
			coo.AddSym(i, j, 1)
		}
	}
	g := FromMatrix(coo.ToCSR())
	colors, nc := g.GreedyColor(NaturalOrder)
	if err := g.VerifyColoring(colors); err != nil {
		t.Fatal(err)
	}
	if nc != n {
		t.Fatalf("K%d coloured with %d colours, want %d", n, nc, n)
	}
}

func TestGreedyColorIsolatedVertices(t *testing.T) {
	coo := sparse.NewCOO(5, 5)
	for i := 0; i < 5; i++ {
		coo.Add(i, i, 1)
	}
	g := FromMatrix(coo.ToCSR())
	colors, nc := g.GreedyColor(SmallestLast)
	if err := g.VerifyColoring(colors); err != nil {
		t.Fatal(err)
	}
	if nc != 1 {
		t.Fatalf("edgeless graph coloured with %d colours, want 1", nc)
	}
}

func TestGreedyColorValidProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}
	for _, ord := range []ColorOrder{NaturalOrder, LargestFirst, SmallestLast} {
		ord := ord
		f := func(seed int64) bool {
			g := randomGraph(rand.New(rand.NewSource(seed)), 50)
			colors, nc := g.GreedyColor(ord)
			if g.VerifyColoring(colors) != nil {
				return false
			}
			// Colour count cannot exceed max degree + 1 (greedy bound).
			maxDeg := 0
			for v := 0; v < g.N; v++ {
				if g.Degree(v) > maxDeg {
					maxDeg = g.Degree(v)
				}
			}
			return nc <= maxDeg+1
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
	}
}

func TestColoringOnMeshClasses(t *testing.T) {
	// Planar-style meshes should colour with few colours; this is what
	// makes colouring packs large (paper Figures 7-8).
	cases := []struct {
		name string
		m    *sparse.CSR
		max  int
	}{
		{"grid2d", gen.Grid2D(20, 20), 4},
		{"trimesh", gen.TriMesh(20, 20, 3), 6},
		{"quaddual", gen.QuadDual(14, 14, 1), 4},
	}
	for _, tc := range cases {
		g := FromMatrix(tc.m)
		colors, nc := g.GreedyColor(SmallestLast)
		if err := g.VerifyColoring(colors); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if nc > tc.max {
			t.Errorf("%s: %d colours, want <= %d", tc.name, nc, tc.max)
		}
	}
}

func TestVerifyColoringCatchesBadInput(t *testing.T) {
	g := pathGraph(3)
	if err := g.VerifyColoring([]int{0, 0, 1}); err == nil {
		t.Fatal("monochromatic edge accepted")
	}
	if err := g.VerifyColoring([]int{0, 1}); err == nil {
		t.Fatal("short colour array accepted")
	}
	if err := g.VerifyColoring([]int{0, -1, 0}); err == nil {
		t.Fatal("uncoloured vertex accepted")
	}
}

func TestColorOrderString(t *testing.T) {
	if NaturalOrder.String() != "natural" || LargestFirst.String() != "largest-first" || SmallestLast.String() != "smallest-last" {
		t.Fatal("ColorOrder.String wrong")
	}
	if ColorOrder(99).String() == "" {
		t.Fatal("unknown order should still format")
	}
}
