package graph

import (
	"math/rand"
	"runtime"
	"sync"
)

// JonesPlassmannColor colours the graph with the Jones–Plassmann parallel
// algorithm: every vertex draws a random priority, and in each round the
// uncoloured vertices that are local maxima among their uncoloured
// neighbours take the smallest colour unused by their neighbourhood.
// The expected round count is O(log n / log log n) on bounded-degree
// graphs, so the colouring step of the STS-k pre-processing — which the
// paper amortises but still pays once (§4.1) — itself parallelises.
//
// The result is a valid colouring with a deterministic outcome for a
// fixed seed; the colour count is comparable to sequential greedy.
func (g *Graph) JonesPlassmannColor(seed int64, workers int) (colors []int, numColors int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(seed))
	prio := make([]float64, g.N)
	for i := range prio {
		prio[i] = rng.Float64()
	}
	colors = make([]int, g.N)
	for i := range colors {
		colors[i] = -1
	}
	remaining := make([]int, g.N)
	for i := range remaining {
		remaining[i] = i
	}
	newColors := make([]int, g.N)
	for len(remaining) > 0 {
		// Round: decide in parallel, commit after a barrier so every
		// decision reads the previous round's colours only.
		for _, v := range remaining {
			newColors[v] = -1
		}
		var wg sync.WaitGroup
		chunk := (len(remaining) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(remaining) {
				break
			}
			hi := lo + chunk
			if hi > len(remaining) {
				hi = len(remaining)
			}
			wg.Add(1)
			// Build-time fan-out: a panic here is an ordering-pipeline bug
			// that must surface to the Build caller, not be contained.
			//stsk:allow-bare-go
			go func(verts []int) {
				defer wg.Done()
				var used []bool
				for _, v := range verts {
					if !isLocalMax(g, v, prio, colors) {
						continue
					}
					deg := g.Degree(v)
					if cap(used) < deg+1 {
						used = make([]bool, deg+1)
					}
					used = used[:deg+1]
					for i := range used {
						used[i] = false
					}
					for _, u := range g.Neighbors(v) {
						if c := colors[u]; c >= 0 && c < len(used) {
							used[c] = true
						}
					}
					c := 0
					for c < len(used) && used[c] {
						c++
					}
					newColors[v] = c
				}
			}(remaining[lo:hi])
		}
		wg.Wait()
		next := remaining[:0]
		for _, v := range remaining {
			if newColors[v] >= 0 {
				colors[v] = newColors[v]
				if newColors[v]+1 > numColors {
					numColors = newColors[v] + 1
				}
			} else {
				next = append(next, v)
			}
		}
		remaining = next
	}
	return colors, numColors
}

// isLocalMax reports whether v's priority dominates all its uncoloured
// neighbours (ties broken by index so the algorithm always progresses).
func isLocalMax(g *Graph, v int, prio []float64, colors []int) bool {
	pv := prio[v]
	for _, u := range g.Neighbors(v) {
		if colors[u] >= 0 {
			continue
		}
		if prio[u] > pv || (prio[u] == pv && u > v) {
			return false
		}
	}
	return true
}
