package gen

import (
	"testing"

	"stsk/internal/sparse"
)

func checkWellFormed(t *testing.T, m *sparse.CSR, name string) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("%s: invalid CSR: %v", name, err)
	}
	if !m.IsStructurallySymmetric() {
		t.Fatalf("%s: not structurally symmetric", name)
	}
	if !m.HasFullNonzeroDiagonal() {
		t.Fatalf("%s: missing or zero diagonal", name)
	}
	// SPD-by-dominance: the lower triangle solves exactly.
	l := m.Lower()
	xTrue := sparse.Ones(l.N)
	b := sparse.RHSForSolution(l, xTrue)
	x, err := sparse.ForwardSubstitution(l, b)
	if err != nil {
		t.Fatalf("%s: forward substitution: %v", name, err)
	}
	if d := sparse.MaxAbsDiff(x, xTrue); d > 1e-10 {
		t.Fatalf("%s: solve error %g", name, d)
	}
}

func TestGrid2D(t *testing.T) {
	m := Grid2D(10, 8)
	checkWellFormed(t, m, "grid2d")
	if m.N != 80 {
		t.Fatalf("n = %d, want 80", m.N)
	}
	if d := m.RowDensity(); d < 4 || d > 5 {
		t.Fatalf("grid2d density %.2f outside [4,5]", d)
	}
}

func TestGrid3D(t *testing.T) {
	m := Grid3D(6, 5, 4)
	checkWellFormed(t, m, "grid3d")
	if m.N != 120 {
		t.Fatalf("n = %d, want 120", m.N)
	}
	if d := m.RowDensity(); d < 5.5 || d > 7 {
		t.Fatalf("grid3d density %.2f outside [5.5,7]", d)
	}
}

func TestKKT3DDensity(t *testing.T) {
	m := KKT3D(12, 12, 12)
	checkWellFormed(t, m, "kkt3d")
	if d := m.RowDensity(); d < 20 || d > 27 {
		t.Fatalf("kkt3d density %.2f outside [20,27] (paper class: 27.01)", d)
	}
}

func TestFEM3DDensity(t *testing.T) {
	m := FEM3D(8, 8, 8, 2)
	checkWellFormed(t, m, "fem3d")
	if m.N != 1024 {
		t.Fatalf("n = %d, want 1024", m.N)
	}
	if d := m.RowDensity(); d < 35 || d > 55 {
		t.Fatalf("fem3d density %.2f outside [35,55] (paper class: 44.63)", d)
	}
}

func TestRGG(t *testing.T) {
	m := RGG(3000, RGGDegree(3000, 14), 1)
	checkWellFormed(t, m, "rgg")
	if d := m.RowDensity(); d < 10 || d > 20 {
		t.Fatalf("rgg density %.2f outside [10,20] (paper class: 14.82)", d)
	}
	// Deterministic for a fixed seed.
	m2 := RGG(3000, RGGDegree(3000, 14), 1)
	if m.NNZ() != m2.NNZ() {
		t.Fatal("RGG not deterministic for fixed seed")
	}
	m3 := RGG(3000, RGGDegree(3000, 14), 2)
	if m.NNZ() == m3.NNZ() {
		t.Log("warning: different seeds gave identical nnz (possible but unlikely)")
	}
}

func TestTriMesh(t *testing.T) {
	m := TriMesh(40, 40, 7)
	checkWellFormed(t, m, "trimesh")
	if d := m.RowDensity(); d < 6 || d > 7.2 {
		t.Fatalf("trimesh density %.2f outside [6,7.2] (paper class: 7.00)", d)
	}
}

func TestQuadDual(t *testing.T) {
	m := QuadDual(30, 30, 1)
	checkWellFormed(t, m, "quaddual")
	if m.N != 1800 {
		t.Fatalf("n = %d, want 1800", m.N)
	}
	if d := m.RowDensity(); d < 3.5 || d > 4.01 {
		t.Fatalf("quaddual density %.2f outside [3.5,4.01] (paper class: 4.00)", d)
	}
	// Max degree is 3 (plus diagonal): no row may exceed 4 entries.
	for i := 0; i < m.N; i++ {
		if m.RowPtr[i+1]-m.RowPtr[i] > 4 {
			t.Fatalf("row %d has %d entries, dual graph degree must be <=3", i, m.RowPtr[i+1]-m.RowPtr[i])
		}
	}
}

func TestRoadNet(t *testing.T) {
	m := RoadNet(20, 20, 3, 5, 3)
	checkWellFormed(t, m, "roadnet")
	if d := m.RowDensity(); d < 2.5 || d > 3.6 {
		t.Fatalf("roadnet density %.2f outside [2.5,3.6] (paper class: 3.1-3.4)", d)
	}
}

func TestPaperSuiteBuildsAndMatchesClasses(t *testing.T) {
	specs := PaperSuite(1500)
	if len(specs) != 12 {
		t.Fatalf("suite has %d entries, want 12", len(specs))
	}
	wantIDs := []string{"G1", "D1", "S1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "D10"}
	for i, s := range specs {
		if s.ID != wantIDs[i] {
			t.Fatalf("suite[%d].ID = %s, want %s", i, s.ID, wantIDs[i])
		}
		m := s.Build(1500)
		checkWellFormed(t, m, s.ID)
		// Density should be within a factor ~2 of the paper matrix's class;
		// small scales pull density down via boundary effects.
		d := m.RowDensity()
		if d < s.PaperDens/2.5 || d > s.PaperDens*1.6 {
			t.Errorf("%s (%s): density %.2f too far from paper %.2f", s.ID, s.Name, d, s.PaperDens)
		}
		if m.N < 400 {
			t.Errorf("%s: suspiciously small n=%d at scale 1500", s.ID, m.N)
		}
	}
}

func TestBySuiteID(t *testing.T) {
	specs := PaperSuite(100)
	if s := BySuiteID(specs, "S1"); s == nil || s.Name != "nlpkkt160" {
		t.Fatalf("BySuiteID(S1) = %+v", s)
	}
	if s := BySuiteID(specs, "nope"); s != nil {
		t.Fatal("BySuiteID should return nil for unknown id")
	}
}

func TestSuiteScaleMonotone(t *testing.T) {
	specs := PaperSuite(0) // clamped to minimum
	small := specs[3].Build(200)
	big := specs[3].Build(5000)
	if big.N <= small.N {
		t.Fatalf("scale did not grow matrix: %d vs %d", small.N, big.N)
	}
}
