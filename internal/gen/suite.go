package gen

import (
	"math"

	"stsk/internal/sparse"
)

// Spec identifies one matrix of the reproduction test suite and how to
// build it at a chosen scale.
type Spec struct {
	ID        string // paper label: G1, D1, S1, D2..D10
	Name      string // UF matrix name it stands in for
	Class     string // generator class
	PaperN    int    // rows of the original UF matrix
	PaperNNZ  int64  // nonzeros of the original UF matrix
	PaperDens float64
	Build     func(scale int) *sparse.CSR // scale ≈ target number of rows
}

// cbrt returns the integer cube-root-ish grid side for ~n points.
func cbrt(n int) int {
	s := int(math.Cbrt(float64(n)))
	if s < 2 {
		s = 2
	}
	return s
}

func sqrtSide(n int) int {
	s := int(math.Sqrt(float64(n)))
	if s < 2 {
		s = 2
	}
	return s
}

// PaperSuite returns the 12-matrix test suite of Table 1, with each UF
// matrix replaced by its generator class at roughly `scale` rows.
// Matrices keep the paper's IDs (G1, D1, S1, D2..D10) and density class:
//
//	G1  ldoor             44.63 nnz/row  → FEM3D, 2 dofs/node
//	D1  rgg_n_2_21_s0     14.82          → RGG targeting degree 14
//	S1  nlpkkt160         27.01          → KKT3D 27-point stencil
//	D2  delaunay_n23       7.00          → TriMesh
//	D3  road_central       3.41          → RoadNet
//	D4  hugetrace-00020    4.00          → QuadDual
//	D5  delaunay_n24       7.00          → TriMesh (larger)
//	D6  hugebubbles-00000  4.00          → QuadDual
//	D7  hugebubbles-00010  4.00          → QuadDual
//	D8  hugebubbles-00020  4.00          → QuadDual
//	D9  road_usa           3.41          → RoadNet
//	D10 europe_osm         3.12          → RoadNet (sparser)
//
// Relative sizes across the suite follow the paper loosely (D10 largest);
// the absolute scale is a parameter because pack structure, not size,
// drives every figure.
func PaperSuite(scale int) []Spec {
	if scale < 64 {
		scale = 64
	}
	return []Spec{
		{
			ID: "G1", Name: "ldoor", Class: "fem3d",
			PaperN: 952203, PaperNNZ: 42493817, PaperDens: 44.63,
			Build: func(s int) *sparse.CSR {
				side := cbrt(s / 2)
				return FEM3D(side, side, side, 2)
			},
		},
		{
			ID: "D1", Name: "rgg_n_2_21_s0", Class: "rgg",
			PaperN: 2097152, PaperNNZ: 31073142, PaperDens: 14.82,
			Build: func(s int) *sparse.CSR {
				return RGG(s, RGGDegree(s, 14), 21)
			},
		},
		{
			ID: "S1", Name: "nlpkkt160", Class: "kkt3d",
			PaperN: 8345600, PaperNNZ: 225422112, PaperDens: 27.01,
			Build: func(s int) *sparse.CSR {
				side := cbrt(s * 5 / 4)
				return KKT3D(side, side, side)
			},
		},
		{
			ID: "D2", Name: "delaunay_n23", Class: "trimesh",
			PaperN: 8388608, PaperNNZ: 58720176, PaperDens: 7.00,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s * 5 / 4)
				return TriMesh(side, side, 23)
			},
		},
		{
			ID: "D3", Name: "road_central", Class: "roadnet",
			PaperN: 14081816, PaperNNZ: 47948642, PaperDens: 3.41,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s / 7)
				return RoadNet(side, side, 3, 6, 3)
			},
		},
		{
			ID: "D4", Name: "hugetrace-00020", Class: "quaddual",
			PaperN: 16002413, PaperNNZ: 64000039, PaperDens: 4.00,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s * 3 / 4)
				return QuadDual(side, side, 20)
			},
		},
		{
			ID: "D5", Name: "delaunay_n24", Class: "trimesh",
			PaperN: 16777216, PaperNNZ: 117440418, PaperDens: 7.00,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s * 3 / 2)
				return TriMesh(side, side, 24)
			},
		},
		{
			ID: "D6", Name: "hugebubbles-00000", Class: "quaddual",
			PaperN: 18318143, PaperNNZ: 73258305, PaperDens: 4.00,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s * 7 / 8)
				return QuadDual(side, side, 21)
			},
		},
		{
			ID: "D7", Name: "hugebubbles-00010", Class: "quaddual",
			PaperN: 19458087, PaperNNZ: 77817615, PaperDens: 4.00,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s * 15 / 16)
				return QuadDual(side, side, 22)
			},
		},
		{
			ID: "D8", Name: "hugebubbles-00020", Class: "quaddual",
			PaperN: 21198119, PaperNNZ: 84778477, PaperDens: 4.00,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s)
				return QuadDual(side, side, 23)
			},
		},
		{
			ID: "D9", Name: "road_usa", Class: "roadnet",
			PaperN: 23947347, PaperNNZ: 81655971, PaperDens: 3.41,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s / 6)
				return RoadNet(side, side, 3, 5, 9)
			},
		},
		{
			ID: "D10", Name: "europe_osm", Class: "roadnet",
			PaperN: 50912018, PaperNNZ: 159021338, PaperDens: 3.12,
			Build: func(s int) *sparse.CSR {
				side := sqrtSide(s * 2 / 9)
				return RoadNet(side, side, 4, 4, 10)
			},
		},
	}
}

// BySuiteID returns the spec with the given paper label, or nil.
func BySuiteID(specs []Spec, id string) *Spec {
	for i := range specs {
		if specs[i].ID == id {
			return &specs[i]
		}
	}
	return nil
}
