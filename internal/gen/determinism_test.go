package gen

import (
	"testing"

	"stsk/internal/sparse"
)

// fingerprint folds a matrix's structure and values into a cheap hash.
func fingerprint(m *sparse.CSR) uint64 {
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	mix(uint64(m.N))
	for _, p := range m.RowPtr {
		mix(uint64(p))
	}
	for k, c := range m.Col {
		mix(uint64(c))
		mix(uint64(int64(m.Val[k] * 1024)))
	}
	return h
}

func TestGeneratorsDeterministic(t *testing.T) {
	builders := map[string]func() *sparse.CSR{
		"grid2d":   func() *sparse.CSR { return Grid2D(13, 11) },
		"grid3d":   func() *sparse.CSR { return Grid3D(5, 6, 7) },
		"kkt3d":    func() *sparse.CSR { return KKT3D(6, 6, 6) },
		"fem3d":    func() *sparse.CSR { return FEM3D(5, 5, 5, 2) },
		"rgg":      func() *sparse.CSR { return RGG(900, RGGDegree(900, 12), 3) },
		"trimesh":  func() *sparse.CSR { return TriMesh(17, 17, 9) },
		"quaddual": func() *sparse.CSR { return QuadDual(12, 12, 5) },
		"roadnet":  func() *sparse.CSR { return RoadNet(9, 9, 3, 7, 2) },
	}
	for name, build := range builders {
		a, b := build(), build()
		if fingerprint(a) != fingerprint(b) {
			t.Errorf("%s: two builds differ", name)
		}
	}
}

func TestSuiteDeterministicAcrossCalls(t *testing.T) {
	s1 := PaperSuite(1200)
	s2 := PaperSuite(1200)
	for i := range s1 {
		a := s1[i].Build(1200)
		b := s2[i].Build(1200)
		if fingerprint(a) != fingerprint(b) {
			t.Errorf("%s: suite build not deterministic", s1[i].ID)
		}
	}
}

func TestQuadDualSeedsDiffer(t *testing.T) {
	a := QuadDual(14, 14, 1)
	b := QuadDual(14, 14, 2)
	if fingerprint(a) == fingerprint(b) {
		t.Fatal("different seeds produced identical duals")
	}
}

func TestHugebubblesInstancesDiffer(t *testing.T) {
	// D6, D7, D8 are three different hugebubbles instances; their
	// stand-ins must not be byte-identical.
	specs := PaperSuite(2000)
	d6 := BySuiteID(specs, "D6").Build(2000)
	d7 := BySuiteID(specs, "D7").Build(2000)
	if d6.N == d7.N && fingerprint(d6) == fingerprint(d7) {
		t.Fatal("D6 and D7 are identical")
	}
}
