// Package gen builds deterministic synthetic sparse matrices that stand in
// for the University of Florida matrices of the paper's Table 1.
//
// The container running this reproduction cannot hold 50-million-row inputs
// and has no network access to the UF collection, so each matrix class is
// replaced by a generator that reproduces the property driving the paper's
// results: the graph class and its row density (nnz/n), which determine the
// colour/level structure, the pack shapes, and the bandwidth after RCM.
// Matrix Market I/O (internal/sparse) lets real UF matrices be substituted
// back in when available.
//
// All generators return a structurally symmetric matrix with a full
// diagonal and SPD-by-dominance values, so the lower triangle is a
// well-conditioned triangular system.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"stsk/internal/sparse"
)

// finish symmetrises bookkeeping: ensures a diagonal and assigns SPD values.
func finish(m *sparse.CSR) *sparse.CSR {
	m = sparse.EnsureDiagonal(m)
	if err := sparse.AssignSPDValues(m); err != nil {
		// Generators always produce a full diagonal; this is a programming
		// error, not an input error.
		panic(fmt.Sprintf("gen: %v", err))
	}
	return m
}

// Grid2D returns the 5-point Laplacian pattern on an nx×ny grid
// (n = nx*ny rows, ≈5 nnz/row).
func Grid2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	coo := sparse.NewCOO(n, 5*n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := id(x, y)
			coo.Add(v, v, 1)
			if x+1 < nx {
				coo.AddSym(v, id(x+1, y), 1)
			}
			if y+1 < ny {
				coo.AddSym(v, id(x, y+1), 1)
			}
		}
	}
	return finish(coo.ToCSR())
}

// Grid3D returns the 7-point Laplacian pattern on an nx×ny×nz grid.
func Grid3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	coo := sparse.NewCOO(n, 7*n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				coo.Add(v, v, 1)
				if x+1 < nx {
					coo.AddSym(v, id(x+1, y, z), 1)
				}
				if y+1 < ny {
					coo.AddSym(v, id(x, y+1, z), 1)
				}
				if z+1 < nz {
					coo.AddSym(v, id(x, y, z+1), 1)
				}
			}
		}
	}
	return finish(coo.ToCSR())
}

// KKT3D returns a 27-point stencil pattern on an nx×ny×nz grid
// (≈27 nnz/row), the density class of nlpkkt160 (27.01 nnz/row), whose
// KKT structure comes from a 3-D PDE-constrained optimisation mesh.
func KKT3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	coo := sparse.NewCOO(n, 27*n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				coo.Add(v, v, 1)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							ux, uy, uz := x+dx, y+dy, z+dz
							if ux < 0 || ux >= nx || uy < 0 || uy >= ny || uz < 0 || uz >= nz {
								continue
							}
							u := id(ux, uy, uz)
							if u > v { // add each undirected edge once
								coo.AddSym(v, u, 1)
							}
						}
					}
				}
			}
		}
	}
	return finish(coo.ToCSR())
}

// FEM3D returns a 3-D finite-element-style pattern: a 27-point stencil grid
// with dofsPerNode fully coupled degrees of freedom per mesh node
// (≈27*dofs nnz/row in the interior). With dofs=2 the interior density is
// ≈54 and the global average lands in the mid-40s, the class of ldoor
// (44.63 nnz/row, a 3-dof structural FEM problem).
func FEM3D(nx, ny, nz, dofsPerNode int) *sparse.CSR {
	nodes := nx * ny * nz
	n := nodes * dofsPerNode
	coo := sparse.NewCOO(n, 27*dofsPerNode*n)
	id := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := id(x, y, z)
				// Couple all dofs of v with all dofs of each neighbour u >= v.
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							ux, uy, uz := x+dx, y+dy, z+dz
							if ux < 0 || ux >= nx || uy < 0 || uy >= ny || uz < 0 || uz >= nz {
								continue
							}
							u := id(ux, uy, uz)
							if u < v {
								continue
							}
							for a := 0; a < dofsPerNode; a++ {
								for b := 0; b < dofsPerNode; b++ {
									i, j := v*dofsPerNode+a, u*dofsPerNode+b
									if i == j {
										coo.Add(i, i, 1)
									} else if u > v || b > a {
										coo.AddSym(i, j, 1)
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return finish(coo.ToCSR())
}

// RGG returns a random geometric graph on n vertices: points uniform in the
// unit square, edges between pairs within distance radius. The expected
// mean degree is n·π·radius² — radius ≈ sqrt(deg/(π·n)) targets a degree.
// This is the class of rgg_n_2_21_s0 (14.82 nnz/row).
func RGG(n int, radius float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	// Bucket grid of cell size radius: neighbours lie in the 3×3 cell block.
	cells := int(math.Ceil(1 / radius))
	if cells < 1 {
		cells = 1
	}
	bucket := make([][]int, cells*cells)
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] / radius)
		cy := int(ys[i] / radius)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		bucket[cy*cells+cx] = append(bucket[cy*cells+cx], i)
	}
	coo := sparse.NewCOO(n, int(float64(n)*radius*radius*float64(n)*math.Pi*1.2)+4*n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
		cx, cy := cellOf(i)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				ux, uy := cx+dx, cy+dy
				if ux < 0 || ux >= cells || uy < 0 || uy >= cells {
					continue
				}
				for _, j := range bucket[uy*cells+ux] {
					if j <= i {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						coo.AddSym(i, j, 1)
					}
				}
			}
		}
	}
	return finish(coo.ToCSR())
}

// RGGDegree returns the radius that targets the given mean degree for an
// n-vertex RGG.
func RGGDegree(n int, degree float64) float64 {
	return math.Sqrt(degree / (math.Pi * float64(n)))
}

// TriMesh returns a triangulated grid: the nx×ny lattice with one diagonal
// per cell, flipped pseudo-randomly per cell. Interior degree is 6 and
// density ≈7 nnz/row — the class of delaunay_n23/n24 (7.00 nnz/row).
func TriMesh(nx, ny int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	coo := sparse.NewCOO(n, 7*n)
	id := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			v := id(x, y)
			coo.Add(v, v, 1)
			if x+1 < nx {
				coo.AddSym(v, id(x+1, y), 1)
			}
			if y+1 < ny {
				coo.AddSym(v, id(x, y+1), 1)
			}
			if x+1 < nx && y+1 < ny {
				if rng.Intn(2) == 0 {
					coo.AddSym(v, id(x+1, y+1), 1)
				} else {
					coo.AddSym(id(x+1, y), id(x, y+1), 1)
				}
			}
		}
	}
	return finish(coo.ToCSR())
}

// QuadDual returns the adjacency of the triangles of a triangulated
// nx×ny grid: each triangle touches at most 3 neighbours across shared
// edges, giving ≈4 nnz/row — the class of hugetrace/hugebubbles
// (4.00 nnz/row, duals of adaptively refined 2-D meshes). The diagonal of
// each cell is flipped pseudo-randomly, mirroring the irregular refinement
// of the real matrices; a perfectly regular dual would overstate the
// spatial locality available to row-level schemes.
func QuadDual(nx, ny int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	// Two triangles per cell: 0 and 1, separated by the cell diagonal.
	// Orientation 0 ("/"): tri 0 owns the left+bottom edges, tri 1 the
	// right+top. Orientation 1 ("\"): tri 0 owns left+top, tri 1
	// right+bottom.
	n := nx * ny * 2
	coo := sparse.NewCOO(n, 4*n)
	tri := func(x, y, half int) int { return (y*nx+x)*2 + half }
	orient := make([]uint8, nx*ny)
	for i := range orient {
		orient[i] = uint8(rng.Intn(2))
	}
	// left/bottom/right/top owner triangle per cell, by orientation.
	owner := func(x, y int, side int) int {
		o := orient[y*nx+x]
		var half int
		switch side { // 0=left 1=bottom 2=right 3=top
		case 0:
			half = 0
		case 1:
			if o == 0 {
				half = 0
			} else {
				half = 1
			}
		case 2:
			half = 1
		case 3:
			if o == 0 {
				half = 1
			} else {
				half = 0
			}
		}
		return tri(x, y, half)
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			lo, up := tri(x, y, 0), tri(x, y, 1)
			coo.Add(lo, lo, 1)
			coo.Add(up, up, 1)
			coo.AddSym(lo, up, 1) // shared diagonal
			if x+1 < nx {
				coo.AddSym(owner(x, y, 2), owner(x+1, y, 0), 1)
			}
			if y+1 < ny {
				coo.AddSym(owner(x, y, 3), owner(x, y+1, 1), 1)
			}
		}
	}
	return finish(coo.ToCSR())
}

// RoadNet returns a road-network-like graph: a coarse ix×iy grid of
// intersections whose links are subdivided into chains of degree-2 segment
// vertices, with a fraction of links pseudo-randomly removed. With
// segs≈3–5 the density lands at 3.1–3.4 nnz/row — the class of
// road_central, road_usa, and europe_osm.
func RoadNet(ix, iy, segs int, dropPercent int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	type link struct{ a, b int }
	var links []link
	inter := func(x, y int) int { return y*ix + x }
	for y := 0; y < iy; y++ {
		for x := 0; x < ix; x++ {
			if x+1 < ix && rng.Intn(100) >= dropPercent {
				links = append(links, link{inter(x, y), inter(x+1, y)})
			}
			if y+1 < iy && rng.Intn(100) >= dropPercent {
				links = append(links, link{inter(x, y), inter(x, y+1)})
			}
		}
	}
	n := ix*iy + len(links)*segs
	coo := sparse.NewCOO(n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1)
	}
	next := ix * iy
	for _, l := range links {
		prev := l.a
		for s := 0; s < segs; s++ {
			coo.AddSym(prev, next, 1)
			prev = next
			next++
		}
		coo.AddSym(prev, l.b, 1)
	}
	return finish(coo.ToCSR())
}
