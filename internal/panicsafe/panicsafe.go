// Package panicsafe converts panics at goroutine and job boundaries into
// wrapped errors so a misbehaving kernel cannot take down the process.
//
// The package is deliberately tiny and dependency-free: internal/solve,
// serve, and the stsk facade all import it, so it must sit below every
// other package in the repo's dependency order.
package panicsafe

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrInternal is the sentinel wrapped by every panic converted to an
// error. Callers match it with errors.Is; the stsk facade re-exports it
// as stsk.ErrInternal and serve maps it to HTTP 500.
var ErrInternal = errors.New("stsk: internal error")

// panicError carries the recovered panic value and the stack captured at
// recovery time. It unwraps to ErrInternal.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("%v: recovered panic: %v\n%s", ErrInternal, e.value, e.stack)
}

func (e *panicError) Unwrap() error { return ErrInternal }

// AsError converts a recovered panic value into an error wrapping
// ErrInternal, capturing the current goroutine's stack. If the panic
// value is already a panicError (a re-panic of a contained failure) it
// is returned unchanged so the original stack survives.
func AsError(p any) error {
	if pe, ok := p.(*panicError); ok {
		return pe
	}
	return &panicError{value: p, stack: debug.Stack()}
}

// Stack returns the captured stack if err (or an error in its chain) is
// a contained panic, or nil otherwise.
func Stack(err error) []byte {
	var pe *panicError
	if errors.As(err, &pe) {
		return pe.stack
	}
	return nil
}

// Go launches fn on a new goroutine with a recover barrier. A panic in
// fn is swallowed after being converted by AsError; name identifies the
// launch site in the captured stack's error text. Use this for
// fire-and-forget goroutines (teardown, relays) where there is no error
// channel to report into — goroutines with a result path should install
// their own recover and route the error there instead.
func Go(name string, fn func()) {
	go func() {
		defer func() {
			if p := recover(); p != nil {
				// Conversion records the stack; there is nowhere to
				// report it, but the process must not die.
				_ = fmt.Sprintf("panicsafe.Go(%s): %v", name, AsError(p))
			}
		}()
		fn()
	}()
}
