package panicsafe

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestAsErrorWrapsErrInternal(t *testing.T) {
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = AsError(p)
			}
		}()
		panic("kernel exploded")
	}()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("AsError result does not wrap ErrInternal: %v", err)
	}
	if !strings.Contains(err.Error(), "kernel exploded") {
		t.Fatalf("error text lost the panic value: %v", err)
	}
	if st := Stack(err); len(st) == 0 || !strings.Contains(string(st), "panicsafe") {
		t.Fatalf("expected captured stack, got %q", st)
	}
}

func TestAsErrorIdempotent(t *testing.T) {
	first := AsError("boom")
	second := AsError(first)
	if first != second {
		t.Fatalf("re-converting a panicError must return it unchanged")
	}
}

func TestStackNilForPlainError(t *testing.T) {
	if st := Stack(errors.New("plain")); st != nil {
		t.Fatalf("plain error should have no stack, got %q", st)
	}
}

func TestGoContainsPanic(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	Go("test", func() {
		defer wg.Done()
		panic("contained")
	})
	wg.Wait() // would crash the test process if Go did not recover
}

func TestGoRunsFn(t *testing.T) {
	done := make(chan struct{})
	Go("test", func() { close(done) })
	<-done
}
