package csrk

import (
	"strings"
	"testing"

	"stsk/internal/sparse"
)

// lowerFromDense builds a lower-triangular CSR from dense rows.
func lowerFromDense(d [][]float64) *sparse.CSR {
	n := len(d)
	coo := sparse.NewCOO(n, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if d[i][j] != 0 {
				coo.Add(i, j, d[i][j])
			}
		}
	}
	return coo.ToCSR()
}

// diag4 is a 4x4 diagonal system: any grouping is valid.
func diag4() *sparse.CSR {
	return lowerFromDense([][]float64{
		{1, 0, 0, 0},
		{0, 2, 0, 0},
		{0, 0, 3, 0},
		{0, 0, 0, 4},
	})
}

func TestBuildAndAccessors(t *testing.T) {
	l := diag4()
	s, err := Build(l, []int{0, 2, 4}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPacks() != 2 || s.NumSuperRows() != 2 {
		t.Fatalf("packs=%d supers=%d, want 2, 2", s.NumPacks(), s.NumSuperRows())
	}
	if lo, hi := s.PackSuperRows(1); lo != 1 || hi != 2 {
		t.Fatalf("PackSuperRows(1) = %d,%d", lo, hi)
	}
	if lo, hi := s.SuperRowRows(0); lo != 0 || hi != 2 {
		t.Fatalf("SuperRowRows(0) = %d,%d", lo, hi)
	}
	if lo, hi := s.PackRows(1); lo != 2 || hi != 4 {
		t.Fatalf("PackRows(1) = %d,%d", lo, hi)
	}
	counts := s.PackRowCounts()
	if len(counts) != 2 || counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("PackRowCounts = %v", counts)
	}
	nnz := s.PackNNZ()
	if nnz[0] != 2 || nnz[1] != 2 {
		t.Fatalf("PackNNZ = %v", nnz)
	}
}

func TestFlat(t *testing.T) {
	l := diag4()
	s := Flat(l)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NumPacks() != 1 || s.NumSuperRows() != 1 {
		t.Fatalf("flat: packs=%d supers=%d", s.NumPacks(), s.NumSuperRows())
	}
	if lo, hi := s.PackRows(0); lo != 0 || hi != 4 {
		t.Fatalf("flat PackRows = %d,%d", lo, hi)
	}
}

func TestValidateRejectsDependentPack(t *testing.T) {
	// Row 1 depends on row 0; both in the same pack as separate super-rows.
	l := lowerFromDense([][]float64{
		{1, 0},
		{5, 2},
	})
	_, err := Build(l, []int{0, 1, 2}, []int{0, 2})
	if err == nil {
		t.Fatal("dependent rows in one pack accepted")
	}
	if !strings.Contains(err.Error(), "independent") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// Same rows inside one super-row: fine, solved sequentially.
	if _, err := Build(l, []int{0, 2}, []int{0, 1}); err != nil {
		t.Fatalf("intra-super-row dependency rejected: %v", err)
	}
}

func TestValidateRejectsBadStructure(t *testing.T) {
	l := diag4()
	cases := []struct {
		name     string
		superPtr []int
		packPtr  []int
	}{
		{"super not spanning", []int{0, 2}, []int{0, 1}},
		{"pack not spanning", []int{0, 2, 4}, []int{0, 1}},
		{"super not increasing", []int{0, 2, 2, 4}, []int{0, 3}},
		{"short super", []int{0}, []int{0, 1}},
		{"pack start", []int{0, 4}, []int{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Build(l, tc.superPtr, tc.packPtr); err == nil {
				t.Fatal("invalid structure accepted")
			}
		})
	}
}

func TestValidateRejectsBadMatrix(t *testing.T) {
	// Upper-triangular entry.
	upper := &sparse.CSR{N: 2, RowPtr: []int{0, 2, 3}, Col: []int{0, 1, 1}, Val: []float64{1, 7, 1}}
	if _, err := Build(upper, []int{0, 1, 2}, []int{0, 2}); err == nil {
		t.Fatal("non-lower-triangular matrix accepted")
	}
	// Zero diagonal.
	zd := lowerFromDense([][]float64{{1, 0}, {1, 0}})
	zd = sparse.EnsureDiagonal(zd)
	if _, err := Build(zd, []int{0, 1, 2}, []int{0, 2}); err == nil {
		t.Fatal("zero diagonal accepted")
	}
	if _, err := Build(nil, []int{0}, []int{0}); err == nil {
		t.Fatal("nil matrix accepted")
	}
}

func TestValidateAllowsCrossPackDeps(t *testing.T) {
	// Row 2,3 depend on rows 0,1 of the earlier pack.
	l := lowerFromDense([][]float64{
		{1, 0, 0, 0},
		{0, 2, 0, 0},
		{7, 0, 3, 0},
		{0, 7, 0, 4},
	})
	s, err := Build(l, []int{0, 1, 2, 3, 4}, []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPacks() != 2 {
		t.Fatalf("packs = %d", s.NumPacks())
	}
}
