package csrk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stsk/internal/sparse"
)

// randomDiagonalStructure builds a valid Structure over a diagonal matrix
// with random nested boundaries — diagonal systems make every grouping
// legal, so the generator explores the boundary space freely.
func randomDiagonalStructure(rng *rand.Rand, maxN int) *Structure {
	n := 1 + rng.Intn(maxN)
	coo := sparse.NewCOO(n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 1+rng.Float64())
	}
	l := coo.ToCSR()
	superPtr := randomBoundaries(rng, n)
	packPtr := randomBoundaries(rng, len(superPtr)-1)
	return &Structure{L: l, SuperPtr: superPtr, PackPtr: packPtr}
}

func randomBoundaries(rng *rand.Rand, span int) []int {
	out := []int{0}
	for out[len(out)-1] < span {
		step := 1 + rng.Intn(3)
		next := out[len(out)-1] + step
		if next > span {
			next = span
		}
		out = append(out, next)
	}
	return out
}

func TestStructureInvariantsProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(19))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomDiagonalStructure(rng, 50)
		if s.Validate() != nil {
			return false
		}
		// Row counts and nnz partitions must tile the matrix exactly.
		rows, nnz := 0, int64(0)
		for _, c := range s.PackRowCounts() {
			if c <= 0 {
				return false
			}
			rows += c
		}
		for _, z := range s.PackNNZ() {
			if z <= 0 {
				return false
			}
			nnz += z
		}
		if rows != s.L.N || nnz != int64(s.L.NNZ()) {
			return false
		}
		// Pack row ranges must be contiguous and ordered.
		prev := 0
		for p := 0; p < s.NumPacks(); p++ {
			lo, hi := s.PackRows(p)
			if lo != prev || hi <= lo {
				return false
			}
			prev = hi
		}
		return prev == s.L.N
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSuperRowRangesTile(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		s := randomDiagonalStructure(rng, 40)
		prev := 0
		for sr := 0; sr < s.NumSuperRows(); sr++ {
			lo, hi := s.SuperRowRows(sr)
			if lo != prev || hi <= lo {
				t.Fatalf("trial %d: super-row %d range [%d,%d) after %d", trial, sr, lo, hi, prev)
			}
			prev = hi
		}
		if prev != s.L.N {
			t.Fatalf("trial %d: super-rows cover %d of %d rows", trial, prev, s.L.N)
		}
	}
}
