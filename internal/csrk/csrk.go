// Package csrk implements the k-level compressed-sparse-row substructure
// of STS-k (paper §3.4, Algorithm 1). A Structure wraps a permuted
// lower-triangular matrix with two extra index arrays:
//
//	PackPtr  ("index3"): pack p owns super-rows PackPtr[p]   : PackPtr[p+1]
//	SuperPtr ("index2"): super-row s owns rows  SuperPtr[s]  : SuperPtr[s+1]
//	L.RowPtr ("index1"): row i owns entries     RowPtr[i]    : RowPtr[i+1]
//
// Packs are processed one after another (they carry dependencies);
// super-rows within a pack are mutually independent and solved in
// parallel; rows within a super-row are solved sequentially by one core,
// which is where spatial locality is harvested.
//
// Row-level methods (CSR-LS, CSR-COL, i.e. k=2) use the same Structure
// with singleton super-rows, so one solver kernel serves all four schemes.
package csrk

import (
	"fmt"

	"stsk/internal/sparse"
)

// Structure is the k-level substructure over a lower-triangular matrix.
type Structure struct {
	L        *sparse.CSR // permuted lower-triangular matrix with diagonal last in each row
	SuperPtr []int       // len NumSuperRows+1; rows of super-row s
	PackPtr  []int       // len NumPacks+1; super-rows of pack p
}

// NumPacks returns the number of packs (independent sets).
func (s *Structure) NumPacks() int { return len(s.PackPtr) - 1 }

// NumSuperRows returns the number of super-rows.
func (s *Structure) NumSuperRows() int { return len(s.SuperPtr) - 1 }

// PackSuperRows returns the half-open super-row range of pack p.
func (s *Structure) PackSuperRows(p int) (lo, hi int) {
	return s.PackPtr[p], s.PackPtr[p+1]
}

// SuperRowRows returns the half-open row range of super-row sr.
func (s *Structure) SuperRowRows(sr int) (lo, hi int) {
	return s.SuperPtr[sr], s.SuperPtr[sr+1]
}

// PackRows returns the half-open row range covered by pack p (super-rows
// within a pack are contiguous by construction).
func (s *Structure) PackRows(p int) (lo, hi int) {
	return s.SuperPtr[s.PackPtr[p]], s.SuperPtr[s.PackPtr[p+1]]
}

// PackRowCounts returns the number of rows (solution components) per pack.
func (s *Structure) PackRowCounts() []int {
	out := make([]int, s.NumPacks())
	for p := range out {
		lo, hi := s.PackRows(p)
		out[p] = hi - lo
	}
	return out
}

// PackNNZ returns the number of stored entries per pack — the work measure
// the paper uses (one fused multiply-add per entry).
func (s *Structure) PackNNZ() []int64 {
	out := make([]int64, s.NumPacks())
	for p := range out {
		lo, hi := s.PackRows(p)
		out[p] = int64(s.L.RowPtr[hi] - s.L.RowPtr[lo])
	}
	return out
}

// Build assembles a Structure from a permuted lower-triangular matrix and
// the nested boundaries. superPtr and packPtr must be monotone with
// superPtr spanning [0, L.N] and packPtr spanning [0, len(superPtr)-1].
func Build(l *sparse.CSR, superPtr, packPtr []int) (*Structure, error) {
	s := &Structure{L: l, SuperPtr: superPtr, PackPtr: packPtr}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Flat returns a Structure with a single pack holding a single super-row
// that spans every row — the degenerate layout for sequential solution.
// Rows within a super-row are always processed in order by one worker, so
// a Flat structure is valid for any lower-triangular system regardless of
// its dependency pattern.
func Flat(l *sparse.CSR) *Structure {
	return &Structure{L: l, SuperPtr: []int{0, l.N}, PackPtr: []int{0, 1}}
}

// Validate checks the nesting invariants and that the matrix is a solvable
// triangular system whose packs are truly independent sets: no entry of L
// may connect two rows inside the same pack (other than within one
// super-row, where rows are solved sequentially in order).
func (s *Structure) Validate() error {
	l := s.L
	if l == nil {
		return fmt.Errorf("csrk: nil matrix")
	}
	if err := l.Validate(); err != nil {
		return err
	}
	if !l.IsLowerTriangular() {
		return fmt.Errorf("csrk: matrix not lower triangular")
	}
	if err := checkPtr(s.SuperPtr, l.N, "SuperPtr"); err != nil {
		return err
	}
	if err := checkPtr(s.PackPtr, len(s.SuperPtr)-1, "PackPtr"); err != nil {
		return err
	}
	// Per-row diagonal: solvers divide by the last entry of each row.
	for i := 0; i < l.N; i++ {
		lo, hi := l.RowPtr[i], l.RowPtr[i+1]
		if lo == hi || l.Col[hi-1] != i {
			return fmt.Errorf("csrk: row %d lacks a trailing diagonal entry", i)
		}
		if l.Val[hi-1] == 0 {
			return fmt.Errorf("csrk: zero diagonal at row %d", i)
		}
	}
	// Independence: a row may reference rows of earlier packs, or earlier
	// rows of its own super-row, but never another super-row of its pack.
	superOf := make([]int, l.N)
	for sr := 0; sr < s.NumSuperRows(); sr++ {
		lo, hi := s.SuperRowRows(sr)
		for i := lo; i < hi; i++ {
			superOf[i] = sr
		}
	}
	for p := 0; p < s.NumPacks(); p++ {
		rowLo, rowHi := s.PackRows(p)
		for i := rowLo; i < rowHi; i++ {
			cols, _ := l.Row(i)
			for _, j := range cols {
				if j == i {
					continue
				}
				if j >= rowLo && superOf[j] != superOf[i] {
					return fmt.Errorf("csrk: pack %d not independent: row %d depends on row %d in super-row %d",
						p, i, j, superOf[j])
				}
				if j > i {
					return fmt.Errorf("csrk: forward dependency %d -> %d", i, j)
				}
			}
		}
	}
	return nil
}

func checkPtr(ptr []int, span int, name string) error {
	if len(ptr) < 2 {
		return fmt.Errorf("csrk: %s too short (%d)", name, len(ptr))
	}
	if ptr[0] != 0 || ptr[len(ptr)-1] != span {
		return fmt.Errorf("csrk: %s must span [0,%d], got [%d,%d]", name, span, ptr[0], ptr[len(ptr)-1])
	}
	for i := 1; i < len(ptr); i++ {
		if ptr[i] <= ptr[i-1] {
			return fmt.Errorf("csrk: %s not strictly increasing at %d", name, i)
		}
	}
	return nil
}
