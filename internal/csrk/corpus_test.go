package csrk_test

// Corpus-driven structural tests: for every shared-corpus matrix and
// method, the task DAG built by the ordering layer must satisfy every
// TaskDAG.Validate invariant against its structure, and its shape
// measures must reflect the matrix's known dependency geometry (a chain
// has no task parallelism; independent diagonal blocks have plenty).
// Lives in an external test package because the builder (internal/order)
// imports csrk.

import (
	"testing"

	"stsk/internal/order"
	"stsk/internal/testmat"
)

func TestTaskDAGValidatesOnCorpus(t *testing.T) {
	for _, ent := range testmat.Corpus() {
		for _, m := range order.Methods() {
			p, err := order.Build(ent.A, order.Options{Method: m, RowsPerSuper: 8})
			if err != nil {
				t.Fatalf("%s/%v: %v", ent.Name, m, err)
			}
			for _, opts := range []order.TaskDAGOptions{
				{},
				{SplitPerPack: 4, MinTaskNNZ: 16},
			} {
				dag := order.BuildTaskDAG(p.S, opts)
				if err := dag.Validate(p.S); err != nil {
					t.Errorf("%s/%v (%+v): %v", ent.Name, m, opts, err)
				}
				if cp := dag.CriticalPath(); cp < 1 || cp > dag.NumTasks() {
					t.Errorf("%s/%v: critical path %d outside [1, %d]", ent.Name, m, cp, dag.NumTasks())
				}
			}
		}
	}
}

func TestTaskDAGShapeMeasures(t *testing.T) {
	// A pure chain serialises completely: the critical path spans every
	// task, so parallelism is exactly 1.
	chain, err := order.Build(testmat.Chain(101), order.Options{Method: order.STS3, RowsPerSuper: 4})
	if err != nil {
		t.Fatal(err)
	}
	dag := order.BuildTaskDAG(chain.S, order.TaskDAGOptions{})
	if pi := dag.Parallelism(); pi != 1 {
		t.Errorf("chain parallelism %.2f, want exactly 1", pi)
	}
	// Independent diagonal blocks must expose their block count as slack
	// once packs are carved finely enough for tasks to see the blocks.
	bd, err := order.Build(testmat.BlockDiag(4, testmat.Grid3D(5)), order.Options{Method: order.STS3, RowsPerSuper: 8})
	if err != nil {
		t.Fatal(err)
	}
	dag = order.BuildTaskDAG(bd.S, order.TaskDAGOptions{SplitPerPack: 4, MinTaskNNZ: 16})
	if pi := dag.Parallelism(); pi < 1.5 {
		t.Errorf("block-diagonal parallelism %.2f, want >= 1.5", pi)
	}
}
