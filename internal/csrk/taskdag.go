package csrk

import "fmt"

// TaskDAG is the dependency-driven execution plan over a Structure: the
// packs are carved into contiguous super-row chunks ("tasks"), and the
// barrier between consecutive packs is replaced by explicit edges from
// each task to the earlier tasks whose solution components it reads.
//
// Tasks are numbered in super-row order, which is topological: a task can
// only depend on rows of earlier packs (csrk.Validate guarantees no
// cross-super-row dependency inside a pack, and tasks never split a
// super-row), so every predecessor id is strictly smaller than the task's
// own id. The direct-dependency lists are transitively sparsified by the
// builder (internal/order.BuildTaskDAG): a task waits only on
// predecessors not already implied by its other predecessors, which is
// what makes point-to-point counter synchronisation cheap.
type TaskDAG struct {
	// TaskPtr: task t owns super-rows TaskPtr[t]:TaskPtr[t+1]. Spans the
	// structure's super-rows exactly, in order, never crossing a pack
	// boundary.
	TaskPtr []int32

	// RowPtr: task t owns rows RowPtr[t]:RowPtr[t+1] (the super-row range
	// resolved through Structure.SuperPtr, cached flat for the scheduler).
	RowPtr []int32

	// Pred/PredPtr: sparsified direct dependencies in CSR form — task t
	// waits on tasks Pred[PredPtr[t]:PredPtr[t+1]], all < t.
	Pred, PredPtr []int32

	// Succ/SuccPtr: the reverse adjacency — the tasks a finishing task t
	// must notify.
	Succ, SuccPtr []int32
}

// NumTasks returns the number of scheduling units.
func (d *TaskDAG) NumTasks() int { return len(d.TaskPtr) - 1 }

// NumEdges returns the number of sparsified direct dependencies.
func (d *TaskDAG) NumEdges() int { return len(d.Pred) }

// TaskRows returns the half-open row range of task t.
func (d *TaskDAG) TaskRows(t int) (lo, hi int) {
	return int(d.RowPtr[t]), int(d.RowPtr[t+1])
}

// Preds returns the sparsified direct predecessors of task t.
func (d *TaskDAG) Preds(t int) []int32 { return d.Pred[d.PredPtr[t]:d.PredPtr[t+1]] }

// Succs returns the direct successors of task t.
func (d *TaskDAG) Succs(t int) []int32 { return d.Succ[d.SuccPtr[t]:d.SuccPtr[t+1]] }

// CriticalPath returns the number of tasks on the longest dependency
// chain — the minimum number of sequential task steps any schedule of the
// DAG must take.
func (d *TaskDAG) CriticalPath() int {
	nt := d.NumTasks()
	depth := make([]int32, nt)
	longest := int32(0)
	for t := 0; t < nt; t++ {
		dep := int32(0)
		for _, p := range d.Preds(t) {
			if depth[p] > dep {
				dep = depth[p]
			}
		}
		depth[t] = dep + 1
		if depth[t] > longest {
			longest = depth[t]
		}
	}
	return int(longest)
}

// Parallelism returns tasks / critical path — the average number of tasks
// runnable concurrently under an ideal point-to-point schedule. A plain
// chain scores 1; the graph schedule is worth switching to when this
// comfortably exceeds 1.
func (d *TaskDAG) Parallelism() float64 {
	if d.NumTasks() == 0 {
		return 0
	}
	return float64(d.NumTasks()) / float64(d.CriticalPath())
}

// Validate checks the structural invariants of the DAG against its
// Structure: tasks tile the super-rows in order without crossing pack
// boundaries, row ranges agree with SuperPtr, every edge points strictly
// backward, and Pred/Succ are mutually consistent.
func (d *TaskDAG) Validate(s *Structure) error {
	nt := d.NumTasks()
	if nt <= 0 {
		return fmt.Errorf("csrk: task dag has no tasks")
	}
	if d.TaskPtr[0] != 0 || int(d.TaskPtr[nt]) != s.NumSuperRows() {
		return fmt.Errorf("csrk: TaskPtr spans [%d,%d], want [0,%d]", d.TaskPtr[0], d.TaskPtr[nt], s.NumSuperRows())
	}
	if len(d.RowPtr) != nt+1 || len(d.PredPtr) != nt+1 || len(d.SuccPtr) != nt+1 {
		return fmt.Errorf("csrk: task dag pointer arrays disagree on task count")
	}
	pack := 0
	for t := 0; t < nt; t++ {
		slo, shi := int(d.TaskPtr[t]), int(d.TaskPtr[t+1])
		if shi <= slo {
			return fmt.Errorf("csrk: task %d empty", t)
		}
		if int(d.RowPtr[t]) != s.SuperPtr[slo] || int(d.RowPtr[t+1]) != s.SuperPtr[shi] {
			return fmt.Errorf("csrk: task %d row range [%d,%d) disagrees with SuperPtr", t, d.RowPtr[t], d.RowPtr[t+1])
		}
		for pack < s.NumPacks() && slo >= s.PackPtr[pack+1] {
			pack++
		}
		if shi > s.PackPtr[pack+1] {
			return fmt.Errorf("csrk: task %d crosses pack %d boundary", t, pack)
		}
		for _, p := range d.Preds(t) {
			if p < 0 || int(p) >= t {
				return fmt.Errorf("csrk: task %d has non-backward predecessor %d", t, p)
			}
		}
	}
	// Succ must be the exact transpose of Pred.
	succCount := make([]int32, nt)
	for t := 0; t < nt; t++ {
		for _, p := range d.Preds(t) {
			succCount[p]++
		}
	}
	for t := 0; t < nt; t++ {
		if int(d.SuccPtr[t+1]-d.SuccPtr[t]) != int(succCount[t]) {
			return fmt.Errorf("csrk: task %d successor count %d, want %d", t, d.SuccPtr[t+1]-d.SuccPtr[t], succCount[t])
		}
		for _, u := range d.Succs(t) {
			found := false
			for _, p := range d.Preds(int(u)) {
				if int(p) == t {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("csrk: successor edge %d->%d missing from Pred", t, u)
			}
		}
	}
	return nil
}
