// Package metrics computes the parallelism and performance measures the
// paper reports: pack counts and mean pack sizes (Figure 7), the share of
// total work in the largest packs (Figure 8), speedups and their geometric
// means (Figures 9–14).
package metrics

import (
	"math"
	"sort"

	"stsk/internal/csrk"
)

// PackStats summarises the pack structure of a plan.
type PackStats struct {
	NumPacks         int
	Rows             int
	NNZ              int64
	MeanRowsPerPack  float64
	MedianRows       float64
	LargestPackRows  int
	LargestPackIndex int
	// WorkShareTop5 is the fraction of total nonzeros (fused multiply-adds)
	// contained in the 5 largest packs — Figure 8's measure.
	WorkShareTop5 float64
}

// Analyze computes PackStats for a structure.
func Analyze(s *csrk.Structure) PackStats {
	rows := s.PackRowCounts()
	nnz := s.PackNNZ()
	st := PackStats{NumPacks: s.NumPacks(), Rows: s.L.N}
	var total int64
	for _, z := range nnz {
		total += z
	}
	st.NNZ = total
	if st.NumPacks == 0 {
		return st
	}
	st.MeanRowsPerPack = float64(st.Rows) / float64(st.NumPacks)
	sortedRows := append([]int(nil), rows...)
	sort.Ints(sortedRows)
	if n := len(sortedRows); n%2 == 1 {
		st.MedianRows = float64(sortedRows[n/2])
	} else {
		st.MedianRows = float64(sortedRows[n/2-1]+sortedRows[n/2]) / 2
	}
	for p, r := range rows {
		if r > st.LargestPackRows {
			st.LargestPackRows = r
			st.LargestPackIndex = p
		}
	}
	st.WorkShareTop5 = WorkShareTopK(nnz, 5)
	return st
}

// WorkShareTopK returns the fraction of the total contained in the k
// largest entries of work.
func WorkShareTopK(work []int64, k int) float64 {
	if len(work) == 0 {
		return 0
	}
	sorted := append([]int64(nil), work...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total, top int64
	for i, w := range sorted {
		total += w
		if i < k {
			top += w
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// GeoMean returns the geometric mean of positive values; zero or negative
// entries are skipped. An empty input returns 0.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Speedup returns ref/t, or 0 when t is not positive.
func Speedup(ref, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return ref / t
}

// Log2 returns log₂(v) for the Figure 7 axes.
func Log2(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Log2(v)
}
