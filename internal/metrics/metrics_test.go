package metrics

import (
	"math"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/order"
)

func TestAnalyzeOnPlans(t *testing.T) {
	a := gen.TriMesh(20, 20, 7)
	ls, err := order.Build(a, order.Options{Method: order.CSRLS})
	if err != nil {
		t.Fatal(err)
	}
	col, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 8})
	if err != nil {
		t.Fatal(err)
	}
	sls := Analyze(ls.S)
	scol := Analyze(col.S)
	if sls.NumPacks != ls.NumPacks || scol.NumPacks != col.NumPacks {
		t.Fatal("pack count mismatch")
	}
	if sls.Rows != a.N || scol.Rows != a.N {
		t.Fatal("row count mismatch")
	}
	// Figure 7 shape: colouring has fewer packs, more rows per pack.
	if scol.NumPacks >= sls.NumPacks {
		t.Fatalf("colour packs %d, LS packs %d", scol.NumPacks, sls.NumPacks)
	}
	if scol.MeanRowsPerPack <= sls.MeanRowsPerPack {
		t.Fatal("colouring should have larger packs")
	}
	// Figure 8 shape: colouring concentrates work in the top packs.
	if scol.WorkShareTop5 <= sls.WorkShareTop5 {
		t.Fatalf("top-5 share: col %.3f <= ls %.3f", scol.WorkShareTop5, sls.WorkShareTop5)
	}
	if scol.WorkShareTop5 < 0.9 {
		t.Fatalf("colouring top-5 share %.3f, paper reports >90%%", scol.WorkShareTop5)
	}
	if sls.LargestPackRows <= 0 || sls.LargestPackIndex < 0 {
		t.Fatal("largest pack not identified")
	}
}

func TestWorkShareTopK(t *testing.T) {
	if got := WorkShareTopK([]int64{10, 20, 30, 40}, 2); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("top-2 share = %v, want 0.7", got)
	}
	if got := WorkShareTopK([]int64{5}, 5); got != 1 {
		t.Fatalf("single pack share = %v, want 1", got)
	}
	if got := WorkShareTopK(nil, 5); got != 0 {
		t.Fatalf("empty share = %v, want 0", got)
	}
	if got := WorkShareTopK([]int64{0, 0}, 1); got != 0 {
		t.Fatalf("zero work share = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{3, 0, -1}); math.Abs(got-3) > 1e-12 {
		t.Fatalf("GeoMean skipping nonpositive = %v, want 3", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v", got)
	}
}

func TestSpeedupAndLog2(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("Speedup wrong")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("Speedup by zero should be 0")
	}
	if Log2(8) != 3 || Log2(0) != 0 {
		t.Fatal("Log2 wrong")
	}
}

func TestMedian(t *testing.T) {
	a := gen.Grid2D(9, 9)
	p, err := order.Build(a, order.Options{Method: order.CSRCOL})
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(p.S)
	if st.MedianRows <= 0 {
		t.Fatalf("median = %v", st.MedianRows)
	}
}
