package metrics

import (
	"math/rand"
	"testing"

	"stsk/internal/gen"
	"stsk/internal/order"
	"stsk/internal/sparse"
)

func TestDARBandwidthReducedByInPackRCM(t *testing.T) {
	// The §3.4 claim, measured. On an RCM-pre-ordered mesh the super-rows
	// are already band-friendly inside each pack, so to isolate the DAR
	// reorder we shuffle the matrix and skip the base RCM: the in-pack RCM
	// must then recover a band-reduced (line-like) DAR on its own.
	rng := rand.New(rand.NewSource(5))
	mesh := gen.TriMesh(26, 26, 11)
	perm := rng.Perm(mesh.N)
	a, err := sparse.PermuteSym(mesh, perm)
	if err != nil {
		t.Fatal(err)
	}
	common := order.Options{Method: order.STS3, RowsPerSuper: 6, SkipBaseRCM: true}
	withOpts := common
	withoutOpts := common
	withoutOpts.SkipInPackRCM = true
	with, err := order.Build(a, withOpts)
	if err != nil {
		t.Fatal(err)
	}
	without, err := order.Build(a, withoutOpts)
	if err != nil {
		t.Fatal(err)
	}
	sWith := DARBandwidths(with.S, 8)
	sWithout := DARBandwidths(without.S, 8)
	mWith := MeanDARSpan(sWith)
	mWithout := MeanDARSpan(sWithout)
	if mWith >= mWithout {
		t.Fatalf("in-pack RCM did not reduce mean DAR span: %.1f vs %.1f", mWith, mWithout)
	}
	// And on the paper's own pipeline (base RCM on), the reorder must not
	// make the already-banded DAR worse.
	p1, err := order.Build(mesh, order.Options{Method: order.STS3, RowsPerSuper: 6})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := order.Build(mesh, order.Options{Method: order.STS3, RowsPerSuper: 6, SkipInPackRCM: true})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := MeanDARSpan(DARBandwidths(p1.S, 8)), MeanDARSpan(DARBandwidths(p2.S, 8)); a > b*1.1 {
		t.Fatalf("in-pack RCM degraded a pre-banded DAR: %.2f vs %.2f", a, b)
	}
}

func TestDARStatsShape(t *testing.T) {
	a := gen.Grid2D(18, 18)
	p, err := order.Build(a, order.Options{Method: order.STS3, RowsPerSuper: 6})
	if err != nil {
		t.Fatal(err)
	}
	stats := DARBandwidths(p.S, 0)
	if len(stats) != p.NumPacks {
		t.Fatalf("stats for %d packs, want %d", len(stats), p.NumPacks)
	}
	totalTasks := 0
	for _, st := range stats {
		totalTasks += st.Tasks
		if st.Bandwidth < 0 || st.Tasks <= 0 {
			t.Fatalf("degenerate stats %+v", st)
		}
		if st.Edges > 0 && st.MeanSpan <= 0 {
			t.Fatalf("edges without span: %+v", st)
		}
	}
	if totalTasks != p.S.NumSuperRows() {
		t.Fatalf("tasks %d != super-rows %d", totalTasks, p.S.NumSuperRows())
	}
}

func TestDARStatsEmptyHelpers(t *testing.T) {
	if MaxDARBandwidth(nil) != 0 || MeanDARSpan(nil) != 0 {
		t.Fatal("empty helpers should return 0")
	}
}
