package metrics

import (
	"stsk/internal/csrk"
	"stsk/internal/dar"
)

// DARStats quantifies §3.4's structural claim: after the in-pack RCM the
// data-affinity-and-reuse graph of each pack should be band-reduced —
// tasks that share reused solution components sit next to each other in
// task order, approaching the line graph of Figure 5.
type DARStats struct {
	Pack       int
	Tasks      int
	Edges      int
	Bandwidth  int     // max |i-j| over DAR edges in the pack's task order
	MeanSpan   float64 // mean |i-j| over DAR edges
	IsLineLike bool    // every task has DAR degree <= 2
}

// DARBandwidths reconstructs each pack's DAR graph from the structure and
// returns its statistics in pack order. maxClique caps the pairwise edges
// contributed by one shared component (0 = exact DAR).
func DARBandwidths(s *csrk.Structure, maxClique int) []DARStats {
	l := s.L
	superOf := make([]int, l.N)
	for sr := 0; sr < s.NumSuperRows(); sr++ {
		lo, hi := s.SuperRowRows(sr)
		for i := lo; i < hi; i++ {
			superOf[i] = sr
		}
	}
	out := make([]DARStats, 0, s.NumPacks())
	for p := 0; p < s.NumPacks(); p++ {
		srLo, srHi := s.PackSuperRows(p)
		rowLo, _ := s.PackRows(p)
		nTasks := srHi - srLo
		tasks := make([]dar.Task, nTasks)
		seen := make(map[int]struct{})
		for sr := srLo; sr < srHi; sr++ {
			clear(seen)
			var inputs []int
			lo, hi := s.SuperRowRows(sr)
			for i := lo; i < hi; i++ {
				cols, _ := l.Row(i)
				for _, j := range cols {
					if j >= rowLo {
						continue // own pack (own super-row): not a reuse source
					}
					src := superOf[j]
					if _, ok := seen[src]; !ok {
						seen[src] = struct{}{}
						inputs = append(inputs, src)
					}
				}
			}
			tasks[sr-srLo] = dar.Task{Inputs: inputs}
		}
		g := dar.BuildGraph(tasks, maxClique)
		st := DARStats{Pack: p, Tasks: nTasks, IsLineLike: true}
		sumSpan := 0
		for v := 0; v < g.N; v++ {
			if g.Degree(v) > 2 {
				st.IsLineLike = false
			}
			for _, u := range g.Neighbors(v) {
				if u <= v {
					continue
				}
				st.Edges++
				span := u - v
				sumSpan += span
				if span > st.Bandwidth {
					st.Bandwidth = span
				}
			}
		}
		if st.Edges > 0 {
			st.MeanSpan = float64(sumSpan) / float64(st.Edges)
		}
		out = append(out, st)
	}
	return out
}

// MaxDARBandwidth returns the largest per-pack DAR bandwidth — the single
// number the §3.4 reordering minimises.
func MaxDARBandwidth(stats []DARStats) int {
	worst := 0
	for _, st := range stats {
		if st.Bandwidth > worst {
			worst = st.Bandwidth
		}
	}
	return worst
}

// MeanDARSpan returns the edge-weighted mean span across packs.
func MeanDARSpan(stats []DARStats) float64 {
	sum, edges := 0.0, 0
	for _, st := range stats {
		sum += st.MeanSpan * float64(st.Edges)
		edges += st.Edges
	}
	if edges == 0 {
		return 0
	}
	return sum / float64(edges)
}
